type result = {
  counter : string;
  domains : int;
  total_ops : int;
  seconds : float;
  ops_per_sec : float;
}

let spawn_all ~counter ~domains ~ops_per_domain ~record =
  (* Simple sense barrier: domains spin until everyone is ready, so the
     timed region covers concurrent execution only. *)
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let body pid () =
    Atomic.incr ready;
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    for i = 0 to ops_per_domain - 1 do
      record pid i (Shared_counter.next counter ~pid)
    done
  in
  let handles = Array.init domains (fun pid -> Domain.spawn (body pid)) in
  while Atomic.get ready < domains do
    Domain.cpu_relax ()
  done;
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  Array.iter Domain.join handles;
  Unix.gettimeofday () -. t0

let validate ~domains ~ops_per_domain =
  if domains <= 0 then invalid_arg "Harness: domains must be positive";
  if ops_per_domain < 0 then invalid_arg "Harness: negative ops_per_domain"

let throughput ~make ~domains ~ops_per_domain =
  validate ~domains ~ops_per_domain;
  let counter = make () in
  let seconds = spawn_all ~counter ~domains ~ops_per_domain ~record:(fun _ _ _ -> ()) in
  let total_ops = domains * ops_per_domain in
  {
    counter = Shared_counter.name counter;
    domains;
    total_ops;
    seconds;
    ops_per_sec = (if seconds <= 0. then 0. else float_of_int total_ops /. seconds);
  }

let run_collect ~make ~domains ~ops_per_domain =
  validate ~domains ~ops_per_domain;
  let counter = make () in
  let values = Array.init domains (fun _ -> Array.make ops_per_domain (-1)) in
  let _ = spawn_all ~counter ~domains ~ops_per_domain ~record:(fun pid i v -> values.(pid).(i) <- v) in
  values

let values_are_a_range vss =
  let total = Array.fold_left (fun acc vs -> acc + Array.length vs) 0 vss in
  let seen = Array.make total false in
  let ok = ref true in
  Array.iter
    (Array.iter (fun v ->
         if v < 0 || v >= total || seen.(v) then ok := false else seen.(v) <- true))
    vss;
  !ok && Array.for_all (fun b -> b) seen
