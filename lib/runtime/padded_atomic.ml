(* Cache-line padding for atomics, in the style of multicore-magic's
   [copy_as_padded]: re-allocate the one-word [Atomic.t] block with
   enough trailing fields to fill a cache line.  The trailing fields are
   ordinary immediate values, so the GC scans them harmlessly, and the
   padding moves with the block under minor promotion — unlike inserting
   dead filler allocations between atomics, which compacts away. *)

(* 128 bytes: one cache line on most x86-64 parts plus the adjacent
   line fetched by the spatial prefetcher. *)
let cache_line_words = 16

let pad (type a) (x : a) : a =
  let src = Obj.repr x in
  let n = Obj.size src in
  let dst = Obj.new_block (Obj.tag src) (n + cache_line_words) in
  for i = 0 to n - 1 do
    Obj.set_field dst i (Obj.field src i)
  done;
  Obj.obj dst

type t = { slots : int Atomic.t array; padded : bool }

let make ?(padded = true) n ~init =
  if n < 0 then invalid_arg "Padded_atomic.make: negative size";
  let slot i =
    let a = Atomic.make (init i) in
    if padded then pad a else a
  in
  { slots = Array.init n slot; padded }

let length bank = Array.length bank.slots
let is_padded bank = bank.padded
let get bank i = Atomic.get bank.slots.(i)
let set bank i v = Atomic.set bank.slots.(i) v
let fetch_and_add bank i d = Atomic.fetch_and_add bank.slots.(i) d
let compare_and_set bank i seen v = Atomic.compare_and_set bank.slots.(i) seen v
let incr bank i = Atomic.incr bank.slots.(i)
