(** Shared-memory execution of balancing networks on OCaml 5 multicore
    (paper, Section 1.2).

    Each balancer is one shared memory word holding its state; wires are
    precompiled jump tables.  Tokens are traversals performed by domains;
    each output wire [i] carries an assignment cell handing out the values
    [i, i + t, i + 2t, ...] so a full traversal implements
    [Fetch&Increment] on a distributed counter.

    Two balancer implementations are provided: [Faa] uses
    [Atomic.fetch_and_add] (wait-free, fastest) and [Cas] uses a
    compare-and-set retry loop with bounded exponential backoff whose
    contended crossings are counted — the runtime analogue of the stall
    accounting in [Cn_sim].

    {2 Memory layout}

    The default [Padded_csr] layout is built for the hardware the
    paper's contention bounds care about: balancer states and assignment
    cells live in {!Padded_atomic} banks (one cache line per slot, no
    false sharing between adjacent balancers), and the wiring is a flat
    CSR-style jump table — crossing a balancer reads one adjacent
    routing-table pair and one [next] entry, with no nested-array
    pointer chase.  The [Unpadded_nested] layout reproduces the original
    adjacent-atomics, array-of-arrays representation and is kept so the
    [runtime] bench suite can measure what the layout is worth.

    {2 Precompiled routing}

    [compile] bakes every routing decision into flat tables: the
    Lemma 5.3 bit-reversal wiring of the butterfly blocks becomes plain
    [next] entries, and each balancer's port-selection strategy — the
    mask [fan_out - 1] for power-of-two fan-outs, the symmetric
    double-[mod] otherwise — is chosen once at compile time and stored
    in a stride-2 routing table, so no walk loop re-tests or re-derives
    anything per crossing.

    {2 Allocation}

    Traversals are GC-free: with metrics off, {!traverse},
    {!traverse_decrement}, the batch walks and the pipelined walks
    allocate zero words per token (the crossing functions are top-level,
    the walks are loops over preallocated int arrays); with metrics on,
    recording goes to preallocated sharded counters and an unboxed
    nanosecond reservoir, so the metered paths are allocation-free too.
    The test suite pins both claims with [Gc.minor_words] deltas. *)

type mode = Faa | Cas
(** Balancer implementation: atomic fetch-and-add, or an instrumented
    CAS retry loop. *)

type layout = Padded_csr | Unpadded_nested
(** Memory representation: cache-line-padded states with flat CSR
    wiring (default), or the naive adjacent-atomics nested-array
    layout, kept for benchmarking. *)

type t
(** A compiled network ready for concurrent traversals. *)

val compile : ?mode:mode -> ?layout:layout -> ?metrics:bool -> Cn_network.Topology.t -> t
(** [compile net] builds the runtime representation (defaults: mode
    [Faa], layout [Padded_csr]).  The topology is queried once per
    balancer.  With [~metrics:true] the runtime carries a {!Metrics}
    recorder (per-balancer crossing/stall counters, per-wire tallies,
    sampled token latency) reachable through {!metrics}; without it
    (the default) the traversal paths are exactly the uninstrumented
    ones. *)

val mode : t -> mode
(** Implementation mode chosen at compile time. *)

val metrics : t -> Metrics.t option
(** The observability recorder, when compiled with [~metrics:true].
    Take a {!Metrics.snapshot} at quiescence; [Validator.quiescent_runtime]
    cross-checks it against the assignment cells. *)

val layout : t -> layout
(** Memory layout chosen at compile time. *)

val input_width : t -> int
(** Network input width [w]. *)

val output_width : t -> int
(** Network output width [t]. *)

val traverse : t -> wire:int -> int
(** [traverse rt ~wire] shepherds one token from input wire [wire]
    through the network and returns the counter value assigned at its
    exit wire.  Thread-safe; called concurrently from many domains.
    @raise Invalid_argument if [wire] is out of range. *)

val traverse_batch : t -> wire:int -> n:int -> f:(int -> int -> unit) -> unit
(** [traverse_batch rt ~wire ~n ~f] shepherds [n] tokens from input
    wire [wire], calling [f i value] with each token's index and
    assigned counter value.  Equivalent to [n] calls to {!traverse},
    but the bounds check and mode/layout dispatch are paid once for
    the whole batch — the preferred shape for throughput loops.
    @raise Invalid_argument if [wire] is out of range or [n < 0]. *)

val traverse_batch_decrement : t -> wire:int -> n:int -> f:(int -> int -> unit) -> unit
(** [traverse_batch_decrement rt ~wire ~n ~f] shepherds [n] antitokens
    from input wire [wire] (see {!traverse_decrement}), calling
    [f i value] with each antitoken's index and reclaimed value.  The
    batched analogue of {!traverse_decrement}, used by the service layer
    to drain elimination-remainder decrement runs without falling back
    to per-operation traversals.
    @raise Invalid_argument if [wire] is out of range or [n < 0]. *)

type buffer
(** A caller-owned scratch buffer for the pipelined batch walks: one
    preallocated wavefront of token positions, reused across batches so
    the steady-state pipelined loop allocates nothing. *)

val buffer : ?capacity:int -> unit -> buffer
(** [buffer ()] is a pipelined-traversal scratch buffer holding up to
    [?capacity] (default 64) in-flight tokens.  Buffers are not
    thread-safe: use one per domain (or per service lane).
    @raise Invalid_argument if [capacity < 1]. *)

val buffer_capacity : buffer -> int
(** Wavefront width of the buffer. *)

val traverse_batch_pipelined : t -> buffer -> wire:int -> n:int -> f:(int -> int -> unit) -> unit
(** [traverse_batch_pipelined rt buf ~wire ~n ~f] shepherds [n] tokens
    from input wire [wire] layer-by-layer: a wavefront of up to
    [buffer_capacity buf] tokens advances one balancer crossing per
    round, overlapping the cache misses of independent crossings instead
    of serializing whole walks.  [f i value] receives each token's batch
    index and assigned value; completion order follows the wavefront,
    not the index order.  The multiset of values handed out matches
    {!traverse_batch} — individual index/value pairings may differ, as
    they already do under concurrent traversals.  With metrics on,
    crossings, stalls and exits are recorded, but tokens are interleaved
    so the per-token latency reservoir is not sampled on this path.
    @raise Invalid_argument if [wire] is out of range or [n < 0]. *)

val traverse_batch_pipelined_decrement :
  t -> buffer -> wire:int -> n:int -> f:(int -> int -> unit) -> unit
(** Antitoken analogue of {!traverse_batch_pipelined}. *)

val traverse_decrement : t -> wire:int -> int
(** [traverse_decrement rt ~wire] shepherds one *antitoken* from input
    wire [wire]: every balancer state is decremented instead of
    incremented, undoing one token (Aiello et al.; paper,
    Section 1.4.2), and the assignment cell at the exit wire is rolled
    back by [t].  Returns the value given back to the counter — the
    value the next token exiting that wire will receive.  Sequentially,
    [traverse] after [traverse_decrement] returns the same value the
    antitoken reclaimed, implementing [Fetch&Decrement].
    @raise Invalid_argument if [wire] is out of range. *)

val exit_distribution : t -> Cn_sequence.Sequence.t
(** [exit_distribution rt] is the number of tokens that have exited on
    each output wire so far (derived from the assignment cells);  a step
    sequence in any quiescent state of a counting network. *)

type view = {
  v_mode : mode;
  v_layout : layout;
  v_input_width : int;
  v_output_width : int;
  v_init_states : int array;  (** per balancer: initial state *)
  v_fan_out : int array;  (** per balancer: output arity (the port mask base) *)
  v_offsets : int array;  (** CSR row starts; length [n + 1] *)
  v_next : int array;
      (** flat CSR jump table: encoded destination of port [p] of
          balancer [b] at [v_offsets.(b) + p]; a non-negative entry is a
          balancer id, a negative entry [-(wire + 1)] is network output
          wire [wire] *)
  v_next_nested : int array array;  (** seed layout: per balancer, per port *)
  v_route : int array;
      (** stride-2 precompiled routing table: [v_route.(2b)] is balancer
          [b]'s CSR row base (= [v_offsets.(b)]), [v_route.(2b + 1)] its
          port strategy — [fan_out - 1] (a mask) when the fan-out is a
          power of two, [-fan_out] selecting the symmetric double-[mod]
          path otherwise *)
  v_strategy : int array;
      (** per balancer: the same port strategy, as read by the nested
          walk *)
  v_entry : int array;  (** per input wire: encoded destination *)
}
(** A decompilable snapshot of the compiled representation: everything
    the walk loops read except the atomic state banks, as plain copied
    arrays.  This is the raw material of [Cn_lint]'s CSR-faithfulness
    pass — and, mutated, of its compiler-bug mutants. *)

val view : t -> view
(** [view rt] copies out the compiled wiring.  Mutating the result does
    not affect [rt]. *)

val cas_failures : t -> int
(** Total contended CAS crossings so far ([0] in [Faa] mode) — a lower
    bound on memory-contention events experienced by tokens.  A crossing
    that retries its CAS several times before winning counts once. *)

val reset : t -> unit
(** [reset rt] restores initial balancer states and assignment cells.
    Must not run concurrently with traversals. *)
