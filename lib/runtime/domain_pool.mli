(** A reusable pool of worker domains for repeated timed runs.

    [Domain.spawn] costs a fresh systhread, stack, and minor heap per
    domain; a throughput sweep that spawns and joins for every
    (counter, domain-count) cell pays that setup hundreds of times and
    measures cold domains.  A pool spawns its workers once; each
    {!run} reuses them, gated by a sense barrier so the timed region
    covers concurrent execution only — the same discipline as
    {!Harness}, minus the per-run spawn/join.

    A pool is owned by the domain that created it; {!run} and
    {!shutdown} must be called from that domain, one run at a time. *)

type t
(** A pool of spawned worker domains. *)

val create : int -> t
(** [create size] spawns [size] workers, idle until the first {!run}.
    @raise Invalid_argument if [size <= 0]. *)

val size : t -> int
(** Number of workers in the pool. *)

val run : t -> domains:int -> (int -> unit) -> float
(** [run pool ~domains body] executes [body pid] on workers
    [0 .. domains - 1] and returns the wall-clock seconds between the
    instant all participants were released and the last one finishing.
    Workers beyond [domains] sit the round out.

    If a job raises, the round still completes (every participant
    checks out), the first exception raised is re-raised here, and the
    pool remains usable for further rounds — an exception poisons the
    round, never the pool.
    @raise Invalid_argument if [domains] is not in [1 .. size pool], or
    if the pool has been shut down. *)

val shutdown : t -> unit
(** [shutdown pool] terminates and joins the workers.  Idempotent. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool size f] runs [f] over a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
