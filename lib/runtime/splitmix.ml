let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x27BB2EE687B0B0FD in
  let x = x lxor (x lsr 32) in
  x land max_int
