module Topology = Cn_network.Topology
module Balancer = Cn_network.Balancer

type mode = Faa | Cas
type layout = Padded_csr | Unpadded_nested

(* Destinations are encoded as ints: a non-negative value is a balancer
   id; a negative value [-(wire + 1)] is a network output wire. *)
let encode_dest = function
  | Topology.Bal_input { bal; port = _ } -> bal
  | Topology.Net_output i -> -(i + 1)

type t = {
  mode : mode;
  layout : layout;
  input_width : int;
  output_width : int;
  states : Padded_atomic.t; (* per balancer: monotone transition count *)
  init_states : int array;
  offsets : int array; (* CSR row starts; length n+1, so row b spans
                          [offsets.(b), offsets.(b+1)) and its width is
                          balancer b's fan-out *)
  next : int array; (* CSR: encoded destination of port p of balancer b
                       at [offsets.(b) + p] *)
  next_nested : int array array; (* seed layout: per balancer, per port *)
  fan_out : int array;
  entry : int array; (* per input wire: encoded destination *)
  values : Padded_atomic.t; (* per output wire: next value to hand out *)
  failures : Padded_atomic.t; (* single slot, always padded *)
  metrics : Metrics.t option;
}

let compile ?(mode = Faa) ?(layout = Padded_csr) ?(metrics = false) net =
  let n = Topology.size net in
  let t = Topology.output_width net in
  (* One topology query per balancer; every per-balancer field below is
     derived from this pass. *)
  let descriptors = Array.init n (Topology.balancer net) in
  let init_states = Array.map (fun d -> d.Balancer.init_state) descriptors in
  let fan_out = Array.map (fun d -> d.Balancer.fan_out) descriptors in
  let offsets = Array.make (n + 1) 0 in
  for b = 0 to n - 1 do
    offsets.(b + 1) <- offsets.(b) + fan_out.(b)
  done;
  let next_nested =
    Array.init n (fun b ->
        Array.init fan_out.(b) (fun port ->
            encode_dest (Topology.consumer net (Topology.Bal_output { bal = b; port }))))
  in
  let next = Array.make offsets.(n) 0 in
  Array.iteri (fun b row -> Array.blit row 0 next offsets.(b) (Array.length row)) next_nested;
  let padded = layout = Padded_csr in
  {
    mode;
    layout;
    input_width = Topology.input_width net;
    output_width = t;
    states = Padded_atomic.make ~padded n ~init:(Array.get init_states);
    init_states;
    offsets;
    next;
    next_nested;
    fan_out;
    entry =
      Array.init (Topology.input_width net) (fun i ->
          encode_dest (Topology.consumer net (Topology.Net_input i)));
    values = Padded_atomic.make ~padded t ~init:Fun.id;
    failures = Padded_atomic.make 1 ~init:(fun _ -> 0);
    metrics = (if metrics then Some (Metrics.create ~balancers:n ~wires:t ()) else None);
  }

let mode rt = rt.mode
let layout rt = rt.layout
let input_width rt = rt.input_width
let output_width rt = rt.output_width
let metrics rt = rt.metrics

(* Balancer crossings.  The CAS loop backs off exponentially (doubling
   [cpu_relax] bursts, bounded) instead of hammering the contended line,
   and a crossing that lost at least one CAS counts as ONE stall however
   many retries it took: stalls witness contended crossings, not retry
   storms amplified by the lack of backoff. *)

let max_backoff = 64

let cross_faa rt b = Padded_atomic.fetch_and_add rt.states b 1

let cross_cas rt b =
  let rec retry spins contended =
    let s = Padded_atomic.get rt.states b in
    if Padded_atomic.compare_and_set rt.states b s (s + 1) then begin
      if contended then Padded_atomic.incr rt.failures 0;
      s
    end
    else begin
      for _ = 1 to spins do
        Domain.cpu_relax ()
      done;
      retry (if spins >= max_backoff then max_backoff else spins * 2) true
    end
  in
  retry 1 false

let cross_dec_faa rt b = Padded_atomic.fetch_and_add rt.states b (-1) - 1

let cross_dec_cas rt b =
  let rec retry spins contended =
    let s = Padded_atomic.get rt.states b in
    if Padded_atomic.compare_and_set rt.states b s (s - 1) then begin
      if contended then Padded_atomic.incr rt.failures 0;
      s - 1
    end
    else begin
      for _ = 1 to spins do
        Domain.cpu_relax ()
      done;
      retry (if spins >= max_backoff then max_backoff else spins * 2) true
    end
  in
  retry 1 false

(* Metered crossings: same transitions, plus per-balancer crossing and
   stall recording into the calling domain's metrics sink.  These live
   beside the bare versions rather than inside them so the metrics-off
   hot path keeps its exact shape — the only cost of compiling without
   metrics is one [match] per traverse (or per batch), outside the walk
   loop. *)

let metered_cas sk rt b step bias =
  Metrics.crossing sk b;
  let rec retry spins contended =
    let s = Padded_atomic.get rt.states b in
    if Padded_atomic.compare_and_set rt.states b s (s + step) then begin
      if contended then begin
        Padded_atomic.incr rt.failures 0;
        Metrics.stall sk b
      end;
      s + bias
    end
    else begin
      for _ = 1 to spins do
        Domain.cpu_relax ()
      done;
      retry (if spins >= max_backoff then max_backoff else spins * 2) true
    end
  in
  retry 1 false

let metered_cross sk mode ~anti =
  match (mode, anti) with
  | Faa, false ->
      fun rt b ->
        Metrics.crossing sk b;
        cross_faa rt b
  | Faa, true ->
      fun rt b ->
        Metrics.crossing sk b;
        cross_dec_faa rt b
  | Cas, false -> fun rt b -> metered_cas sk rt b 1 0
  | Cas, true -> fun rt b -> metered_cas sk rt b (-1) (-1)

(* Walk loops, specialized per wiring layout.  In the CSR walk a token
   crossing is two reads of [offsets] (consecutive entries, same cache
   line), one read of [next], and the atomic transition — no nested
   array to chase.  States may be negative after antitoken decrements,
   hence the symmetric modulo; for the dominant power-of-two fan-outs
   the mask form replaces both integer divisions (two's-complement
   [land] is already the non-negative residue).  The unsafe reads are
   sound: [Topology.create] validated the wiring, so every encoded
   destination and every [offsets]/[next] index is in range. *)

let[@inline] port_of s q = if q land (q - 1) = 0 then s land (q - 1) else (s mod q + q) mod q

let rec walk_csr rt cross dest =
  if dest >= 0 then begin
    let s = cross rt dest in
    let base = Array.unsafe_get rt.offsets dest in
    let q = Array.unsafe_get rt.offsets (dest + 1) - base in
    walk_csr rt cross (Array.unsafe_get rt.next (base + port_of s q))
  end
  else dest

let rec walk_nested rt cross dest =
  if dest >= 0 then begin
    let s = cross rt dest in
    let q = rt.fan_out.(dest) in
    let port = (s mod q + q) mod q in
    walk_nested rt cross rt.next_nested.(dest).(port)
  end
  else dest

let walk rt cross dest =
  match rt.layout with
  | Padded_csr -> walk_csr rt cross dest
  | Unpadded_nested -> walk_nested rt cross dest

let exit_increment rt dest =
  let out = -dest - 1 in
  Padded_atomic.fetch_and_add rt.values out rt.output_width

let exit_decrement rt dest =
  let out = -dest - 1 in
  Padded_atomic.fetch_and_add rt.values out (-rt.output_width) - rt.output_width

(* One metered traversal: latency sampling brackets the walk, the exit
   tally lands in the same sink as the crossings. *)
let metered_one rt sk cross entry ~anti =
  let t0 = Metrics.sample_begin sk in
  let dest = walk rt cross entry in
  let out = -dest - 1 in
  let v = if anti then exit_decrement rt dest else exit_increment rt dest in
  if anti then Metrics.antitoken_exit sk ~wire:out else Metrics.token_exit sk ~wire:out;
  if t0 >= 0 then Metrics.sample_end sk t0;
  v

let traverse_metered rt m ~wire ~anti =
  let sk = Metrics.sink m in
  metered_one rt sk (metered_cross sk rt.mode ~anti) rt.entry.(wire) ~anti

let traverse rt ~wire =
  if wire < 0 || wire >= rt.input_width then
    invalid_arg "Network_runtime.traverse: wire out of range";
  match rt.metrics with
  | Some m -> traverse_metered rt m ~wire ~anti:false
  | None ->
      let cross = match rt.mode with Faa -> cross_faa | Cas -> cross_cas in
      exit_increment rt (walk rt cross rt.entry.(wire))

let traverse_decrement rt ~wire =
  if wire < 0 || wire >= rt.input_width then
    invalid_arg "Network_runtime.traverse_decrement: wire out of range";
  match rt.metrics with
  | Some m -> traverse_metered rt m ~wire ~anti:true
  | None ->
      let cross = match rt.mode with Faa -> cross_dec_faa | Cas -> cross_dec_cas in
      exit_decrement rt (walk rt cross rt.entry.(wire))

let traverse_batch rt ~wire ~n ~f =
  if wire < 0 || wire >= rt.input_width then
    invalid_arg "Network_runtime.traverse_batch: wire out of range";
  if n < 0 then invalid_arg "Network_runtime.traverse_batch: negative batch size";
  (* Bounds check and dispatch paid once for the whole batch. *)
  let entry = rt.entry.(wire) in
  match rt.metrics with
  | Some m ->
      let sk = Metrics.sink m in
      let cross = metered_cross sk rt.mode ~anti:false in
      for i = 0 to n - 1 do
        f i (metered_one rt sk cross entry ~anti:false)
      done
  | None -> (
      let cross = match rt.mode with Faa -> cross_faa | Cas -> cross_cas in
      match rt.layout with
      | Padded_csr ->
          for i = 0 to n - 1 do
            f i (exit_increment rt (walk_csr rt cross entry))
          done
      | Unpadded_nested ->
          for i = 0 to n - 1 do
            f i (exit_increment rt (walk_nested rt cross entry))
          done)

let exit_distribution rt =
  (* Output wire [i] hands out [i, i + t, ...]; its next value [v]
     encodes the number of exits as [(v - i) / t]. *)
  Array.init rt.output_width (fun i -> (Padded_atomic.get rt.values i - i) / rt.output_width)

type view = {
  v_mode : mode;
  v_layout : layout;
  v_input_width : int;
  v_output_width : int;
  v_init_states : int array;
  v_fan_out : int array;
  v_offsets : int array;
  v_next : int array;
  v_next_nested : int array array;
  v_entry : int array;
}

let view rt =
  {
    v_mode = rt.mode;
    v_layout = rt.layout;
    v_input_width = rt.input_width;
    v_output_width = rt.output_width;
    v_init_states = Array.copy rt.init_states;
    v_fan_out = Array.copy rt.fan_out;
    v_offsets = Array.copy rt.offsets;
    v_next = Array.copy rt.next;
    v_next_nested = Array.map Array.copy rt.next_nested;
    v_entry = Array.copy rt.entry;
  }

let cas_failures rt = Padded_atomic.get rt.failures 0

let reset rt =
  Array.iteri (fun b s -> Padded_atomic.set rt.states b s) rt.init_states;
  for i = 0 to rt.output_width - 1 do
    Padded_atomic.set rt.values i i
  done;
  Padded_atomic.set rt.failures 0 0;
  Option.iter Metrics.reset rt.metrics
