module Topology = Cn_network.Topology
module Balancer = Cn_network.Balancer

type mode = Faa | Cas

(* Destinations are encoded as ints: a non-negative value is a balancer
   id; a negative value [-(wire + 1)] is a network output wire. *)
let encode_dest = function
  | Topology.Bal_input { bal; port = _ } -> bal
  | Topology.Net_output i -> -(i + 1)

type t = {
  mode : mode;
  input_width : int;
  output_width : int;
  states : int Atomic.t array; (* per balancer: monotone transition count *)
  init_states : int array;
  fan_out : int array;
  next : int array array; (* per balancer, per port: encoded destination *)
  entry : int array; (* per input wire: encoded destination *)
  values : int Atomic.t array; (* per output wire: next value to hand out *)
  failures : int Atomic.t;
}

let compile ?(mode = Faa) net =
  let n = Topology.size net in
  let t = Topology.output_width net in
  let init_states = Array.init n (fun b -> (Topology.balancer net b).Balancer.init_state) in
  {
    mode;
    input_width = Topology.input_width net;
    output_width = t;
    states = Array.init n (fun b -> Atomic.make init_states.(b));
    init_states;
    fan_out = Array.init n (fun b -> (Topology.balancer net b).Balancer.fan_out);
    next =
      Array.init n (fun b ->
          let q = (Topology.balancer net b).Balancer.fan_out in
          Array.init q (fun port ->
              encode_dest (Topology.consumer net (Topology.Bal_output { bal = b; port }))));
    entry =
      Array.init (Topology.input_width net) (fun i ->
          encode_dest (Topology.consumer net (Topology.Net_input i)));
    values = Array.init t (fun i -> Atomic.make i);
    failures = Atomic.make 0;
  }

let mode rt = rt.mode
let input_width rt = rt.input_width
let output_width rt = rt.output_width

let cross_faa rt b = Atomic.fetch_and_add rt.states.(b) 1

let rec cross_cas rt b =
  let s = Atomic.get rt.states.(b) in
  if Atomic.compare_and_set rt.states.(b) s (s + 1) then s
  else begin
    (* A concurrent token won the balancer: that is a stall. *)
    Atomic.incr rt.failures;
    Domain.cpu_relax ();
    cross_cas rt b
  end

let traverse rt ~wire =
  if wire < 0 || wire >= rt.input_width then invalid_arg "Network_runtime.traverse: wire out of range";
  let cross = match rt.mode with Faa -> cross_faa | Cas -> cross_cas in
  let rec walk dest =
    if dest >= 0 then begin
      let s = cross rt dest in
      let q = rt.fan_out.(dest) in
      (* States may be negative after antitoken decrements. *)
      let port = (s mod q + q) mod q in
      walk rt.next.(dest).(port)
    end
    else begin
      let out = -dest - 1 in
      Atomic.fetch_and_add rt.values.(out) rt.output_width
    end
  in
  walk rt.entry.(wire)

let cross_dec_faa rt b = Atomic.fetch_and_add rt.states.(b) (-1) - 1

let rec cross_dec_cas rt b =
  let s = Atomic.get rt.states.(b) in
  if Atomic.compare_and_set rt.states.(b) s (s - 1) then s - 1
  else begin
    Atomic.incr rt.failures;
    Domain.cpu_relax ();
    cross_dec_cas rt b
  end

let traverse_decrement rt ~wire =
  if wire < 0 || wire >= rt.input_width then
    invalid_arg "Network_runtime.traverse_decrement: wire out of range";
  let cross = match rt.mode with Faa -> cross_dec_faa | Cas -> cross_dec_cas in
  let rec walk dest =
    if dest >= 0 then begin
      let s = cross rt dest in
      let q = rt.fan_out.(dest) in
      let port = (s mod q + q) mod q in
      walk rt.next.(dest).(port)
    end
    else begin
      let out = -dest - 1 in
      Atomic.fetch_and_add rt.values.(out) (-rt.output_width) - rt.output_width
    end
  in
  walk rt.entry.(wire)

let exit_distribution rt =
  (* Output wire [i] hands out [i, i + t, ...]; its next value [v]
     encodes the number of exits as [(v - i) / t]. *)
  Array.init rt.output_width (fun i -> (Atomic.get rt.values.(i) - i) / rt.output_width)

let cas_failures rt = Atomic.get rt.failures

let reset rt =
  Array.iteri (fun b s -> Atomic.set rt.states.(b) s) rt.init_states;
  Array.iteri (fun i c -> Atomic.set c i) rt.values;
  Atomic.set rt.failures 0
