module Topology = Cn_network.Topology
module Balancer = Cn_network.Balancer

type mode = Faa | Cas
type layout = Padded_csr | Unpadded_nested

(* Destinations are encoded as ints: a non-negative value is a balancer
   id; a negative value [-(wire + 1)] is a network output wire. *)
let encode_dest = function
  | Topology.Bal_input { bal; port = _ } -> bal
  | Topology.Net_output i -> -(i + 1)

(* Port strategies, precompiled per balancer: a non-negative strategy is
   the mask [q - 1] of a power-of-two fan-out [q] (state land mask is
   the port, even for negative post-antitoken states, by two's
   complement); a negative strategy [-q] selects the symmetric
   double-[mod] path for general fan-outs.  Compiling the power-of-two
   test here hoists it out of every crossing of every walk loop. *)
let strategy_of q = if q land (q - 1) = 0 then q - 1 else -q

let[@inline] port_of_strategy s strat =
  if strat >= 0 then s land strat
  else
    let q = -strat in
    (s mod q + q) mod q

type t = {
  mode : mode;
  layout : layout;
  input_width : int;
  output_width : int;
  states : Padded_atomic.t; (* per balancer: monotone transition count *)
  init_states : int array;
  offsets : int array; (* CSR row starts; length n+1, so row b spans
                          [offsets.(b), offsets.(b+1)) and its width is
                          balancer b's fan-out *)
  next : int array; (* CSR: encoded destination of port p of balancer b
                       at [offsets.(b) + p] *)
  next_nested : int array array; (* seed layout: per balancer, per port *)
  fan_out : int array;
  route : int array; (* stride-2 routing table: [route.(2b)] is balancer
                        b's CSR row base (= offsets.(b)), [route.(2b+1)]
                        its port strategy — one adjacent pair per
                        crossing instead of two [offsets] reads plus a
                        power-of-two test *)
  strategy : int array; (* per balancer: the same strategy, for the
                           nested walk's fast path *)
  entry : int array; (* per input wire: encoded destination *)
  values : Padded_atomic.t; (* per output wire: next value to hand out *)
  failures : Padded_atomic.t; (* single slot, always padded *)
  metrics : Metrics.t option;
}

let compile ?(mode = Faa) ?(layout = Padded_csr) ?(metrics = false) net =
  let n = Topology.size net in
  let t = Topology.output_width net in
  (* One topology query per balancer; every per-balancer field below is
     derived from this pass.  All routing — including the Lemma 5.3
     bit-reversal wiring of the butterfly blocks, which the topology
     layer computes arithmetically — is baked into the [next]/[route]
     images here, so no walk loop ever re-derives a wire. *)
  let descriptors = Array.init n (Topology.balancer net) in
  let init_states = Array.map (fun d -> d.Balancer.init_state) descriptors in
  let fan_out = Array.map (fun d -> d.Balancer.fan_out) descriptors in
  let offsets = Array.make (n + 1) 0 in
  for b = 0 to n - 1 do
    offsets.(b + 1) <- offsets.(b) + fan_out.(b)
  done;
  let next_nested =
    Array.init n (fun b ->
        Array.init fan_out.(b) (fun port ->
            encode_dest (Topology.consumer net (Topology.Bal_output { bal = b; port }))))
  in
  let next = Array.make offsets.(n) 0 in
  Array.iteri (fun b row -> Array.blit row 0 next offsets.(b) (Array.length row)) next_nested;
  let strategy = Array.map strategy_of fan_out in
  let route = Array.make (2 * n) 0 in
  for b = 0 to n - 1 do
    route.(2 * b) <- offsets.(b);
    route.((2 * b) + 1) <- strategy.(b)
  done;
  let padded = layout = Padded_csr in
  {
    mode;
    layout;
    input_width = Topology.input_width net;
    output_width = t;
    states = Padded_atomic.make ~padded n ~init:(Array.get init_states);
    init_states;
    offsets;
    next;
    next_nested;
    fan_out;
    route;
    strategy;
    entry =
      Array.init (Topology.input_width net) (fun i ->
          encode_dest (Topology.consumer net (Topology.Net_input i)));
    values = Padded_atomic.make ~padded t ~init:Fun.id;
    failures = Padded_atomic.make 1 ~init:(fun _ -> 0);
    metrics = (if metrics then Some (Metrics.create ~balancers:n ~wires:t ()) else None);
  }

let mode rt = rt.mode
let layout rt = rt.layout
let input_width rt = rt.input_width
let output_width rt = rt.output_width
let metrics rt = rt.metrics

(* Balancer crossings.  Every crossing function is a top-level value of
   one shared shape [t -> Metrics.sink -> int -> int]: the bare versions
   ignore the sink (callers pass [Metrics.null]), the metered versions
   record into it.  Sharing the shape means the walk loops take the
   crossing as an ordinary function argument and the dispatch [match]es
   below return statically allocated closures — the traverse paths
   allocate nothing, metered or not.

   The CAS loop backs off exponentially (doubling [cpu_relax] bursts,
   bounded) instead of hammering the contended line, and a crossing that
   lost at least one CAS counts as ONE stall however many retries it
   took: stalls witness contended crossings, not retry storms amplified
   by the lack of backoff. *)

let max_backoff = 64

let cross_faa rt _sk b = Padded_atomic.fetch_and_add rt.states b 1
let cross_dec_faa rt _sk b = Padded_atomic.fetch_and_add rt.states b (-1) - 1

let rec cas_retry rt b step bias spins contended =
  let s = Padded_atomic.get rt.states b in
  if Padded_atomic.compare_and_set rt.states b s (s + step) then begin
    if contended then Padded_atomic.incr rt.failures 0;
    s + bias
  end
  else begin
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done;
    cas_retry rt b step bias (if spins >= max_backoff then max_backoff else spins * 2) true
  end

let cross_cas rt _sk b = cas_retry rt b 1 0 1 false
let cross_dec_cas rt _sk b = cas_retry rt b (-1) (-1) 1 false

(* Metered crossings: same transitions, plus per-balancer crossing and
   stall recording into the calling domain's metrics sink. *)

let metered_faa rt sk b =
  Metrics.crossing sk b;
  Padded_atomic.fetch_and_add rt.states b 1

let metered_dec_faa rt sk b =
  Metrics.crossing sk b;
  Padded_atomic.fetch_and_add rt.states b (-1) - 1

let rec metered_cas_retry rt sk b step bias spins contended =
  let s = Padded_atomic.get rt.states b in
  if Padded_atomic.compare_and_set rt.states b s (s + step) then begin
    if contended then begin
      Padded_atomic.incr rt.failures 0;
      Metrics.stall sk b
    end;
    s + bias
  end
  else begin
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done;
    metered_cas_retry rt sk b step bias
      (if spins >= max_backoff then max_backoff else spins * 2)
      true
  end

let metered_cas rt sk b =
  Metrics.crossing sk b;
  metered_cas_retry rt sk b 1 0 1 false

let metered_dec_cas rt sk b =
  Metrics.crossing sk b;
  metered_cas_retry rt sk b (-1) (-1) 1 false

(* Dispatch: each arm is a statically allocated top-level function, so
   selecting one allocates nothing. *)
let cross_fn mode ~anti =
  match (mode, anti) with
  | Faa, false -> cross_faa
  | Faa, true -> cross_dec_faa
  | Cas, false -> cross_cas
  | Cas, true -> cross_dec_cas

let metered_fn mode ~anti =
  match (mode, anti) with
  | Faa, false -> metered_faa
  | Faa, true -> metered_dec_faa
  | Cas, false -> metered_cas
  | Cas, true -> metered_dec_cas

(* Walk loops, specialized per wiring layout.  In the CSR walk a token
   crossing is one adjacent [route] pair read, one read of [next], and
   the atomic transition — no nested array to chase, no per-crossing
   power-of-two test.  The unsafe reads are sound: [Topology.create]
   validated the wiring, so every encoded destination and every
   [route]/[next] index is in range. *)

let rec walk_csr rt sk cross dest =
  if dest >= 0 then begin
    let s = cross rt sk dest in
    let base = Array.unsafe_get rt.route (2 * dest) in
    let strat = Array.unsafe_get rt.route ((2 * dest) + 1) in
    walk_csr rt sk cross (Array.unsafe_get rt.next (base + port_of_strategy s strat))
  end
  else dest

let rec walk_nested rt sk cross dest =
  if dest >= 0 then begin
    let s = cross rt sk dest in
    let strat = Array.unsafe_get rt.strategy dest in
    walk_nested rt sk cross rt.next_nested.(dest).(port_of_strategy s strat)
  end
  else dest

let walk rt sk cross dest =
  match rt.layout with
  | Padded_csr -> walk_csr rt sk cross dest
  | Unpadded_nested -> walk_nested rt sk cross dest

let exit_increment rt dest =
  let out = -dest - 1 in
  Padded_atomic.fetch_and_add rt.values out rt.output_width

let exit_decrement rt dest =
  let out = -dest - 1 in
  Padded_atomic.fetch_and_add rt.values out (-rt.output_width) - rt.output_width

(* One metered traversal: latency sampling brackets the walk, the exit
   tally lands in the same sink as the crossings. *)
let metered_one rt sk cross entry ~anti =
  let t0 = Metrics.sample_begin sk in
  let dest = walk rt sk cross entry in
  let out = -dest - 1 in
  let v = if anti then exit_decrement rt dest else exit_increment rt dest in
  if anti then Metrics.antitoken_exit sk ~wire:out else Metrics.token_exit sk ~wire:out;
  if t0 >= 0 then Metrics.sample_end sk t0;
  v

let traverse_metered rt m ~wire ~anti =
  let sk = Metrics.sink m in
  metered_one rt sk (metered_fn rt.mode ~anti) rt.entry.(wire) ~anti

let traverse rt ~wire =
  if wire < 0 || wire >= rt.input_width then
    invalid_arg "Network_runtime.traverse: wire out of range";
  match rt.metrics with
  | Some m -> traverse_metered rt m ~wire ~anti:false
  | None -> exit_increment rt (walk rt Metrics.null (cross_fn rt.mode ~anti:false) rt.entry.(wire))

let traverse_decrement rt ~wire =
  if wire < 0 || wire >= rt.input_width then
    invalid_arg "Network_runtime.traverse_decrement: wire out of range";
  match rt.metrics with
  | Some m -> traverse_metered rt m ~wire ~anti:true
  | None -> exit_decrement rt (walk rt Metrics.null (cross_fn rt.mode ~anti:true) rt.entry.(wire))

let check_batch_args rt ~who ~wire ~n =
  if wire < 0 || wire >= rt.input_width then
    invalid_arg (Printf.sprintf "Network_runtime.%s: wire out of range" who);
  if n < 0 then invalid_arg (Printf.sprintf "Network_runtime.%s: negative batch size" who)

(* Sequential batch: bounds check and dispatch paid once for the whole
   batch, tokens walked one after the other. *)
let batch_loop rt ~wire ~n ~f ~anti =
  let entry = rt.entry.(wire) in
  match rt.metrics with
  | Some m ->
      let sk = Metrics.sink m in
      let cross = metered_fn rt.mode ~anti in
      for i = 0 to n - 1 do
        f i (metered_one rt sk cross entry ~anti)
      done
  | None -> (
      let cross = cross_fn rt.mode ~anti in
      let sk = Metrics.null in
      match rt.layout with
      | Padded_csr ->
          if anti then
            for i = 0 to n - 1 do
              f i (exit_decrement rt (walk_csr rt sk cross entry))
            done
          else
            for i = 0 to n - 1 do
              f i (exit_increment rt (walk_csr rt sk cross entry))
            done
      | Unpadded_nested ->
          if anti then
            for i = 0 to n - 1 do
              f i (exit_decrement rt (walk_nested rt sk cross entry))
            done
          else
            for i = 0 to n - 1 do
              f i (exit_increment rt (walk_nested rt sk cross entry))
            done)

let traverse_batch rt ~wire ~n ~f =
  check_batch_args rt ~who:"traverse_batch" ~wire ~n;
  batch_loop rt ~wire ~n ~f ~anti:false

let traverse_batch_decrement rt ~wire ~n ~f =
  check_batch_args rt ~who:"traverse_batch_decrement" ~wire ~n;
  batch_loop rt ~wire ~n ~f ~anti:true

(* ------------------------------------------------------------------ *)
(* Layer-pipelined batch traversal.  A wavefront of up to [capacity]
   tokens advances one balancer crossing per round, so while one
   crossing waits on a cache miss the next token's crossing — on a
   different balancer bank of the same layer — is already in flight.
   The scratch buffer is caller-owned and reused across batches, so the
   steady-state loop allocates nothing. *)

type buffer = { dests : int array }

let buffer ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Network_runtime.buffer: capacity must be positive";
  { dests = Array.make capacity 0 }

let buffer_capacity buf = Array.length buf.dests

let wavefront_csr rt sk cross dests k base ~metered ~anti f =
  let live = ref k in
  while !live > 0 do
    for i = 0 to k - 1 do
      let d = Array.unsafe_get dests i in
      if d >= 0 then begin
        let s = cross rt sk d in
        let rbase = Array.unsafe_get rt.route (2 * d) in
        let strat = Array.unsafe_get rt.route ((2 * d) + 1) in
        let nd = Array.unsafe_get rt.next (rbase + port_of_strategy s strat) in
        Array.unsafe_set dests i nd;
        if nd < 0 then begin
          decr live;
          let out = -nd - 1 in
          let v = if anti then exit_decrement rt nd else exit_increment rt nd in
          if metered then
            if anti then Metrics.antitoken_exit sk ~wire:out
            else Metrics.token_exit sk ~wire:out;
          f (base + i) v
        end
      end
    done
  done

let wavefront_nested rt sk cross dests k base ~metered ~anti f =
  let live = ref k in
  while !live > 0 do
    for i = 0 to k - 1 do
      let d = Array.unsafe_get dests i in
      if d >= 0 then begin
        let s = cross rt sk d in
        let strat = Array.unsafe_get rt.strategy d in
        let nd = rt.next_nested.(d).(port_of_strategy s strat) in
        Array.unsafe_set dests i nd;
        if nd < 0 then begin
          decr live;
          let out = -nd - 1 in
          let v = if anti then exit_decrement rt nd else exit_increment rt nd in
          if metered then
            if anti then Metrics.antitoken_exit sk ~wire:out
            else Metrics.token_exit sk ~wire:out;
          f (base + i) v
        end
      end
    done
  done

(* Pipelined tokens are interleaved, so per-token latency sampling does
   not bracket a single walk; the pipelined paths record crossings,
   stalls and exits but skip the latency reservoir. *)
let pipelined_loop rt buf ~wire ~n ~f ~anti =
  let entry = rt.entry.(wire) in
  let sk, cross, metered =
    match rt.metrics with
    | Some m -> (Metrics.sink m, metered_fn rt.mode ~anti, true)
    | None -> (Metrics.null, cross_fn rt.mode ~anti, false)
  in
  let dests = buf.dests in
  let cap = Array.length dests in
  let base = ref 0 in
  while !base < n do
    let k = if n - !base < cap then n - !base else cap in
    Array.fill dests 0 k entry;
    (match rt.layout with
    | Padded_csr -> wavefront_csr rt sk cross dests k !base ~metered ~anti f
    | Unpadded_nested -> wavefront_nested rt sk cross dests k !base ~metered ~anti f);
    base := !base + k
  done

let traverse_batch_pipelined rt buf ~wire ~n ~f =
  check_batch_args rt ~who:"traverse_batch_pipelined" ~wire ~n;
  pipelined_loop rt buf ~wire ~n ~f ~anti:false

let traverse_batch_pipelined_decrement rt buf ~wire ~n ~f =
  check_batch_args rt ~who:"traverse_batch_pipelined_decrement" ~wire ~n;
  pipelined_loop rt buf ~wire ~n ~f ~anti:true

let exit_distribution rt =
  (* Output wire [i] hands out [i, i + t, ...]; its next value [v]
     encodes the number of exits as [(v - i) / t]. *)
  Array.init rt.output_width (fun i -> (Padded_atomic.get rt.values i - i) / rt.output_width)

type view = {
  v_mode : mode;
  v_layout : layout;
  v_input_width : int;
  v_output_width : int;
  v_init_states : int array;
  v_fan_out : int array;
  v_offsets : int array;
  v_next : int array;
  v_next_nested : int array array;
  v_route : int array;
  v_strategy : int array;
  v_entry : int array;
}

let view rt =
  {
    v_mode = rt.mode;
    v_layout = rt.layout;
    v_input_width = rt.input_width;
    v_output_width = rt.output_width;
    v_init_states = Array.copy rt.init_states;
    v_fan_out = Array.copy rt.fan_out;
    v_offsets = Array.copy rt.offsets;
    v_next = Array.copy rt.next;
    v_next_nested = Array.map Array.copy rt.next_nested;
    v_route = Array.copy rt.route;
    v_strategy = Array.copy rt.strategy;
    v_entry = Array.copy rt.entry;
  }

let cas_failures rt = Padded_atomic.get rt.failures 0

let reset rt =
  Array.iteri (fun b s -> Padded_atomic.set rt.states b s) rt.init_states;
  for i = 0 to rt.output_width - 1 do
    Padded_atomic.set rt.values i i
  done;
  Padded_atomic.set rt.failures 0 0;
  Option.iter Metrics.reset rt.metrics
