type custom = {
  cname : string;
  cruntime : Network_runtime.t option;
  cnext : pid:int -> int;
  cprev : pid:int -> int;
}

type impl =
  | Network of Network_runtime.t
  | Central of int Atomic.t
  | Lock of Mutex.t * int ref
  | Custom of custom

type t = impl

let of_topology ?mode ?layout ?metrics net =
  Network (Network_runtime.compile ?mode ?layout ?metrics net)

let runtime = function
  | Network rt -> Some rt
  | Custom c -> c.cruntime
  | Central _ | Lock _ -> None

let central_faa () = Central (Atomic.make 0)

let with_lock () = Lock (Mutex.create (), ref 0)

let custom ~name ?runtime ~next ~prev () =
  Custom { cname = name; cruntime = runtime; cnext = next; cprev = prev }

let next c ~pid =
  if pid < 0 then invalid_arg "Shared_counter.next: negative pid";
  match c with
  | Network rt -> Network_runtime.traverse rt ~wire:(pid mod Network_runtime.input_width rt)
  | Custom c -> c.cnext ~pid
  | Central a -> Atomic.fetch_and_add a 1
  | Lock (m, r) ->
      Mutex.lock m;
      let v = !r in
      r := v + 1;
      Mutex.unlock m;
      v

let prev c ~pid =
  if pid < 0 then invalid_arg "Shared_counter.prev: negative pid";
  match c with
  | Network rt ->
      Network_runtime.traverse_decrement rt ~wire:(pid mod Network_runtime.input_width rt)
  | Custom c -> c.cprev ~pid
  | Central a -> Atomic.fetch_and_add a (-1) - 1
  | Lock (m, r) ->
      Mutex.lock m;
      let v = !r - 1 in
      r := v;
      Mutex.unlock m;
      v

let name = function
  | Network _ -> "network"
  | Central _ -> "central-faa"
  | Lock _ -> "lock"
  | Custom c -> c.cname
