(** Banks of cache-line-padded atomic integers.

    OCaml 5 allocates each [int Atomic.t] as a one-word heap block, so a
    bank built with [Array.init n (fun _ -> Atomic.make 0)] places the
    atomics on adjacent words: every update invalidates its neighbours'
    cache lines (false sharing), reintroducing exactly the memory
    contention counting networks exist to spread out.  A padded bank
    instead gives each slot its own cache line, so concurrent tokens
    crossing *different* balancers never contend in the memory system.

    The padding trick (cf. [multicore-magic]) re-allocates each atomic
    inside a block widened to a full cache line; the padding travels with
    the block through minor and major collections. *)

type t
(** A fixed-size bank of atomic integer slots. *)

val pad : 'a -> 'a
(** [pad x] re-allocates the heap block of [x] widened to a full cache
    line and returns the copy — the primitive under every padded slot,
    exposed so other layers (e.g. {!Atomics.Real}) can pad individual
    atomics without building a bank.  [x] must be a heap block (an
    [Atomic.t], a record, ...), not an immediate. *)

val make : ?padded:bool -> int -> init:(int -> int) -> t
(** [make n ~init] is a bank of [n] slots, slot [i] starting at
    [init i].  [~padded] (default [true]) gives every slot a private
    cache line; [~padded:false] reproduces the naive adjacent layout,
    kept for benchmarking the difference.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int
(** Number of slots. *)

val is_padded : t -> bool
(** Whether the bank was built with per-slot cache-line padding. *)

val get : t -> int -> int
(** [get bank i] atomically reads slot [i]. *)

val set : t -> int -> int -> unit
(** [set bank i v] atomically writes [v] to slot [i]. *)

val fetch_and_add : t -> int -> int -> int
(** [fetch_and_add bank i d] atomically adds [d] to slot [i] and
    returns the previous value. *)

val compare_and_set : t -> int -> int -> int -> bool
(** [compare_and_set bank i seen v] installs [v] in slot [i] iff it
    still holds [seen]. *)

val incr : t -> int -> unit
(** [incr bank i] atomically increments slot [i]. *)
