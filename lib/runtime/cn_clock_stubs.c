/* Monotonic clock as a tagged OCaml int, nanoseconds.
 *
 * The bechamel stub this replaces returns a boxed int64, so every
 * latency sample allocated on the minor heap; returning Val_long keeps
 * the metered traverse path allocation-free.  63 bits of nanoseconds
 * since boot wrap after ~146 years, which outlives any run we time.
 */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value cn_monotonic_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
