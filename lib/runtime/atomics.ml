module type S = sig
  type 'a t

  val make : 'a -> 'a t
  val make_stat : int -> int t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val relax : unit -> unit
  val nap : unit -> unit
end

module Real = struct
  type 'a t = 'a Atomic.t

  let make v = Padded_atomic.pad (Atomic.make v)
  let make_stat v = Atomic.make v
  let get = Atomic.get
  let set = Atomic.set
  let compare_and_set = Atomic.compare_and_set
  let fetch_and_add = Atomic.fetch_and_add
  let incr = Atomic.incr
  let relax = Domain.cpu_relax

  (* Same patience as Domain_pool's waiters. *)
  let nap () = Unix.sleepf 0.0002
end
