(** The atomic-operation vocabulary of the service layer, as a
    signature — so the same protocol code can run over the real
    hardware atomics (production) or over instrumented atomics that
    yield to a deterministic scheduler at every access
    ({!Cn_check.Engine}-style model checking).

    {!Service_core.Make} is a functor over {!S}; {!Real} is the
    default, zero-surprise instantiation (each operation is a direct
    [Stdlib.Atomic] call).  The checker library provides the second
    implementation, where [get]/[set]/[compare_and_set]/
    [fetch_and_add] are controller yield points and [relax]/[nap]
    deschedule the model domain until another domain writes. *)

module type S = sig
  type 'a t
  (** An atomic reference. *)

  val make : 'a -> 'a t
  (** A fresh atomic holding the given value.  Under instrumentation
      every access to it is a scheduler decision point and its value is
      part of the explored state. *)

  val make_stat : int -> int t
  (** A fresh atomic for a {e statistics counter}: a single-writer
      tally that never influences control flow.  The real
      implementation is identical to {!make}; the instrumented one
      excludes the cell from yield points and state hashing so
      monotonically growing counters do not blow up the explored state
      space.  Using it for anything a protocol branches on is unsound. *)

  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** Same equality contract as [Stdlib.Atomic.compare_and_set]:
      physical comparison of the current value against [seen]. *)

  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit

  val relax : unit -> unit
  (** A failed-spin hint: the caller observed no progress and is about
      to retry.  Real: [Domain.cpu_relax].  Instrumented: deschedule
      until another model domain performs a write (a pure spin retry
      against unchanged shared state is guaranteed to fail again, so
      skipping ahead loses no interleavings). *)

  val nap : unit -> unit
  (** A longer backoff after a spin budget is exhausted.  Real: a
      sub-millisecond [Unix.sleepf].  Instrumented: same as {!relax}. *)
end

module Real : S with type 'a t = 'a Atomic.t
(** The production implementation.  [make] pads each atomic onto its
    own cache line (via {!Padded_atomic.pad}) because the service's
    coordination words — combiner flags, parked counts, submission
    slots — are exactly the kind of adjacent one-word blocks that
    false-share; [make_stat] is a plain unpadded atomic. *)
