external now_ns : unit -> int = "cn_monotonic_now_ns" [@@noalloc]
