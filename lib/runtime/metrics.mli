(** Low-overhead observability for the compiled runtime.

    Theorem 6.7's amortized-contention bound says {e where} contention
    lands, not just how much of it there is; this module gives the
    runtime the per-balancer view needed to check that shape
    empirically.  A [Metrics.t] holds per-balancer traversal and stall
    counters plus per-output-wire tallies, sharded into per-domain sinks
    ({!Padded_atomic} banks, merged only at {!snapshot} time) so the
    accounting never adds a shared hot word to the traversal path, and a
    monotonic-clock token-latency reservoir sampled every
    [sample_period] tokens.

    Enable it with [Network_runtime.compile ~metrics:true]; read it back
    with {!snapshot} once the network is quiescent.  The snapshot type
    is shared with the simulator ([Cn_sim.Stall_model.snapshot]), so
    simulated and real contention profiles are directly comparable, and
    serializes to schema-versioned JSON with {!to_json}. *)

type t
(** A sharded metrics recorder attached to one compiled network. *)

val schema_version : int
(** Version of the snapshot JSON schema ([1]). *)

val create :
  ?shards:int ->
  ?reservoir:int ->
  ?sample_period:int ->
  balancers:int ->
  wires:int ->
  unit ->
  t
(** [create ~balancers ~wires ()] is a recorder for a network with
    [balancers] balancers and [wires] output wires.  [?shards] (default
    16) is the number of per-domain sinks (domains hash into them by
    id; collisions are correct, just less local), [?reservoir] (default
    512) the latency-sample capacity per sink, [?sample_period] (default
    16) the token period between latency measurements.
    @raise Invalid_argument on non-positive parameters. *)

(** {2 Hot-path recording}

    These are called by the instrumented runtime; library users normally
    only {!snapshot}.  A [sink] is valid on any domain but should be
    re-fetched per task, not cached across domains. *)

type sink
(** The calling domain's shard of the recorder. *)

val sink : t -> sink
(** [sink m] is the sink the calling domain writes to. *)

val null : sink
(** A zero-size sink that must never be recorded into.  The
    uninstrumented runtime walk loops pass it so bare and metered
    crossing functions share one (closure-free) signature. *)

val crossing : sink -> int -> unit
(** Record one token (or antitoken) crossing balancer [b]. *)

val stall : sink -> int -> unit
(** Record one contended CAS crossing at balancer [b]. *)

val token_exit : sink -> wire:int -> unit
(** Record a token exiting on [wire]. *)

val antitoken_exit : sink -> wire:int -> unit
(** Record an antitoken exiting on [wire] (a net tally decrement). *)

val sample_begin : sink -> int
(** [sample_begin sk] advances the sampling tick; a non-negative result
    is a monotonic timestamp (ns) to pass to {!sample_end} when the
    token exits, a negative result means this token is not sampled. *)

val sample_end : sink -> int -> unit
(** [sample_end sk t0] records [now - t0] into the latency reservoir. *)

val reset : t -> unit
(** Zero all counters and the sampling state.  Must not run concurrently
    with recording. *)

(** {2 Single-owner reservoirs}

    The same Algorithm-R reservoir the sinks use, as a plain
    single-owner value for client-side harnesses (the TCP load rig
    records per-operation round-trip latencies into one per client
    thread).  Not thread-safe: one owner per reservoir. *)

module Reservoir : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [?capacity] (default 2048) samples are kept; later additions
      replace uniformly random slots, keeping the kept set an unbiased
      sample of everything observed.
      @raise Invalid_argument if [capacity <= 0]. *)

  val add : t -> int -> unit
  (** Record one measurement (typically nanoseconds). *)

  val observed : t -> int
  (** Measurements recorded since {!create}. *)

  val kept : t -> int
  (** Samples currently held ([min observed capacity]). *)
end

(** {2 Snapshots} *)

type latency = {
  time_unit : string;  (** ["ns"] for the runtime, ["ticks"] for the simulator *)
  observed : int;  (** latencies measured over the run *)
  kept : int;  (** reservoir samples backing the percentiles *)
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  mean : float;
}

type snapshot = {
  version : int;  (** {!schema_version} *)
  source : string;  (** ["runtime"] or ["sim"] *)
  balancers : int;
  wires : int;
  tokens : int;  (** tokens that completed (exited) *)
  antitokens : int;  (** antitokens that completed *)
  crossings : int array;  (** per balancer *)
  stalls : int array;  (** per balancer *)
  exits : int array;  (** per output wire, net (tokens - antitokens) *)
  latency : latency option;
}
(** A merged, immutable view of a recorder at quiescence.  The record is
    public so other layers ({!Cn_sim.Stall_model}) can emit the same
    type. *)

val snapshot : t -> snapshot
(** [snapshot m] merges the sinks.  Taken at quiescence it satisfies the
    invariants {!Validator.snapshot_invariants} checks; taken mid-run it
    is a consistent-enough progress view (sums may trail in-flight
    tokens). *)

val percentiles : ?time_unit:string -> ?observed:int -> float array -> latency option
(** [percentiles samples] is the latency summary of [samples] (nearest
    rank, [None] when empty) — exposed so simulator histories can build
    {!snapshot}s. *)

val reservoir_summary : ?time_unit:string -> Reservoir.t list -> latency option
(** Merge the kept samples of several {!Reservoir}s (one per client
    thread, say) into one {!latency} summary via {!percentiles};
    [observed] sums across reservoirs.  [None] when nothing was kept. *)

val per_layer : layers:int array -> int array -> int array
(** [per_layer ~layers values] sums a per-balancer array by layer;
    [layers.(b)] is balancer [b]'s 1-based depth
    ([Topology.balancer_depth]). *)

val layer_stalls : t -> layers:int array -> int array
(** [layer_stalls m ~layers] is the live per-layer stall profile,
    summed directly from the sharded counter banks — the typed
    accessor the fabric auto-tuner consumes (no snapshot allocation,
    no JSON round-trip).  Mid-run reads are a consistent-enough
    progress view, like {!snapshot}'s.
    @raise Invalid_argument unless [layers] has one entry per
    balancer. *)

val to_json : ?layers:int array -> snapshot -> string
(** Schema-versioned JSON rendering.  With [?layers] (as in
    {!per_layer}) the profile additionally carries per-layer crossing
    and stall aggregates — the per-layer contention profile read against
    Theorem 6.7. *)
