(** Allocation-free monotonic clock.

    [CLOCK_MONOTONIC] read as a tagged int of nanoseconds — unlike an
    [int64]-returning stub there is no box to allocate, so the metered
    traverse path can timestamp tokens without touching the minor
    heap. *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic clock.  Only differences are
    meaningful. *)
