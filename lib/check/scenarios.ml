module V = Cn_runtime.Validator
module Sequence = Cn_sequence.Sequence
module Counting = Cn_core.Counting

(* The production protocol body over instrumented atomics and the model
   network: what the explorer actually exercises. *)
module Svc = Cn_service.Service_core.Make (Instrumented) (Model_net)

(* Per-run recording.  One OS thread, so plain refs are safe; results
   are (operation, outcome) pairs in completion order. *)
type outcome = Val of int | Rejected | Refused

let op_outcome = function
  | Ok v -> Val v
  | Error Svc.Overloaded -> Rejected
  | Error Svc.Closed -> Refused

type run = {
  rt : Model_net.t;
  svc : Svc.t;
  results : (Svc.op * outcome) list ref;
  shutdowns : int ref; (* completed shutdown calls *)
  distinct_incs : bool; (* elim off, inc-only: values must be distinct *)
}

let worker run sess op () =
  let r =
    match op with Svc.Inc -> Svc.increment sess | Svc.Dec -> Svc.decrement sess
  in
  run.results := (op, op_outcome r) :: !(run.results)

let drainer run () = ignore (Svc.drain run.svc)

let stopper run () =
  ignore (Svc.shutdown run.svc);
  incr run.shutdowns

(* The shared oracle, run on the final state with no fiber scheduled. *)
let check run () =
  let dist = Model_net.exit_distribution run.rt in
  let oks op =
    List.length
      (List.filter
         (fun (o, r) -> o = op && match r with Val _ -> true | _ -> false)
         !(run.results))
  in
  let fail fmt = Printf.ksprintf Option.some fmt in
  if !(run.shutdowns) > 0 && Svc.lifecycle run.svc <> `Stopped then
    fail "shutdown returned but the service is not stopped (resurrected)"
  else if
    List.exists (fun (_, passed) -> not passed) (Model_net.validations run.rt)
  then fail "a drain/shutdown validation observed a non-quiescent network"
  else
    match (Svc.lifecycle run.svc, Model_net.last_validation run.rt) with
    | `Stopped, Some (seen, _) when seen <> dist ->
        fail "network traversed after the validated quiescence point (%s -> %s)"
          (Sequence.to_string seen) (Sequence.to_string dist)
    | `Stopped, None -> fail "service stopped without a quiescent validation"
    | _ ->
        let expected = oks Svc.Inc - oks Svc.Dec in
        if Sequence.sum dist <> expected then
          fail "token conservation: %d exits vs %d ok(inc) - ok(dec)"
            (Sequence.sum dist) expected
        else if not (Sequence.is_step dist) then
          fail "final distribution is not a step: %s" (Sequence.to_string dist)
        else if run.distinct_incs then begin
          let vals =
            List.filter_map
              (fun (o, r) ->
                match (o, r) with Svc.Inc, Val v -> Some v | _ -> None)
              !(run.results)
          in
          let sorted = List.sort_uniq compare vals in
          if List.length sorted <> List.length vals then
            fail "duplicate increment values without elimination: %s"
              (String.concat "," (List.map string_of_int vals))
          else None
        end
        else None

let make_run ?(elim = false) ?(queue = 2) ~w ~t ~distinct_incs () =
  let rt = Model_net.compile (Counting.network ~w ~t) in
  let svc = Svc.make ~max_batch:4 ~queue ~elim ~validate:V.Off rt in
  { rt; svc; results = ref []; shutdowns = ref 0; distinct_incs }

let drain_vs_shutdown () =
  let run = make_run ~w:2 ~t:2 ~distinct_incs:true () in
  let s0 = Svc.session ~wire:0 run.svc in
  {
    Engine.name = "drain-vs-shutdown";
    fibers = [| worker run s0 Svc.Inc; drainer run; stopper run |];
    finish = check run;
  }

let late_admission () =
  let run = make_run ~w:2 ~t:2 ~distinct_incs:true () in
  let s0 = Svc.session ~wire:0 run.svc in
  let s1 = Svc.session ~wire:0 run.svc in
  {
    Engine.name = "late-admission";
    fibers = [| worker run s0 Svc.Inc; worker run s1 Svc.Inc; stopper run |];
    finish = check run;
  }

let mixed_ops_drain () =
  let run = make_run ~elim:true ~w:2 ~t:2 ~distinct_incs:false () in
  let s0 = Svc.session ~wire:0 run.svc in
  let s1 = Svc.session ~wire:0 run.svc in
  {
    Engine.name = "mixed-ops-drain";
    fibers = [| worker run s0 Svc.Inc; worker run s1 Svc.Dec; drainer run |];
    finish = check run;
  }

let submit_await_shutdown () =
  let run = make_run ~w:2 ~t:2 ~distinct_incs:true () in
  let s0 = Svc.session ~wire:0 run.svc in
  let s1 = Svc.session ~wire:1 run.svc in
  let async_worker () =
    match Svc.submit s0 Svc.Inc with
    | Error e -> run.results := (Svc.Inc, op_outcome (Error e)) :: !(run.results)
    | Ok () ->
        let v = Svc.await s0 in
        run.results := (Svc.Inc, Val v) :: !(run.results)
  in
  {
    Engine.name = "submit-await-shutdown";
    fibers = [| async_worker; worker run s1 Svc.Inc; stopper run |];
    finish = check run;
  }

let c44_shutdown () =
  let run = make_run ~w:4 ~t:4 ~distinct_incs:true () in
  let s0 = Svc.session ~wire:0 run.svc in
  let s1 = Svc.session ~wire:1 run.svc in
  let s2 = Svc.session ~wire:2 run.svc in
  {
    Engine.name = "c44-shutdown";
    fibers =
      [|
        worker run s0 Svc.Inc;
        worker run s1 Svc.Inc;
        worker run s2 Svc.Inc;
        stopper run;
      |];
    finish = check run;
  }

let all =
  [
    ("drain-vs-shutdown", drain_vs_shutdown);
    ("late-admission", late_admission);
    ("mixed-ops-drain", mixed_ops_drain);
    ("submit-await-shutdown", submit_await_shutdown);
    ("c44-shutdown", c44_shutdown);
  ]
