(** A deterministic schedule explorer for the service protocol — the
    controller half of the race checker.

    A {!scenario} is a handful of {e model domains} (plain thunks run as
    effect-based fibers on one OS thread) driving code written against
    {!Cn_runtime.Atomics.S}, instantiated with {!Instrumented} atomics.
    Every atomic access yields to this controller, which decides which
    fiber runs next; a whole multi-domain execution is therefore a pure
    function of the schedule, and a schedule is just a list of fiber
    indices — printable, checkable into a test, and replayable.

    {!explore} enumerates schedules by iterative re-execution: depth-first
    over the scheduling tree, bounded by a {e preemption budget} (a
    context switch away from a still-runnable fiber costs one unit;
    switches at blocking points are free), with a state memo that prunes
    re-reached states.  {!replay} runs one pinned schedule — the
    deterministic reproducer format used by the regression tests.

    Two soundness notes, in exchange for tractability:

    - [relax]/[nap] deschedule the yielding fiber until another fiber
      performs an atomic write — counting foreign writes that already
      landed inside the current spin window (since the fiber's previous
      relax), which may have invalidated what the spin observed.  A
      retry whose whole observation window saw no foreign write is
      guaranteed to fail again — the fiber's own writes inside one
      iteration are election/release pairs that restore what it re-reads
      — so no interleaving of the protocols under test is lost.  Code
      whose spin exit depends on non-atomic state, or on its own
      non-restoring writes, would be mis-modelled.
    - The memo keys states by the values of every registered atom plus a
      fold of each fiber's read history; non-immediate values enter the
      key through a structural hash, so distinct states can in principle
      collide.  Ids baked into every instrumented atom make this
      vanishingly unlikely; pass [~memo:false] for the slow exact
      search. *)

type scenario = {
  name : string;
  fibers : (unit -> unit) array;
      (** The model domains.  A fiber that raises fails the run. *)
  finish : unit -> string option;
      (** Oracle, run after every fiber returned: [Some reason] fails the
          schedule.  Runs unscheduled — its atomic accesses are silent. *)
}

type failure = {
  schedule : int list;
      (** The fiber index chosen at every step — feed to {!replay}. *)
  reason : string;
}

type stats = {
  interleavings : int;  (** complete schedules that ran to the oracle *)
  cutoffs : int;  (** schedules abandoned at the step bound *)
  prunes : int;  (** schedules abandoned at a memoized state *)
  complete : bool;  (** false iff the [max_execs] budget ran out *)
}

type outcome = { failure : failure option; stats : stats }

val explore :
  ?preemptions:int ->
  ?max_steps:int ->
  ?max_execs:int ->
  ?memo:bool ->
  (unit -> scenario) ->
  outcome
(** [explore mk] re-executes [mk ()] under every schedule with at most
    [?preemptions] (default [2]) forced context switches, stopping at
    the first oracle violation, deadlock, or fiber exception.
    [?max_steps] (default [10_000]) bounds one schedule's length;
    [?max_execs] (default [1_000_000]) bounds the total number of
    (re-)executions.  The scenario constructor must be deterministic:
    it is called afresh for every execution. *)

val replay : (unit -> scenario) -> int list -> failure option
(** [replay mk schedule] runs exactly one execution, following
    [schedule] step by step (a scheduled fiber that is blocked or
    finished falls back to the first runnable one, so schedules stay
    usable across small protocol edits), then continues cooperatively
    until every fiber returns.  [None] means the oracle passed. *)

val schedule_to_string : int list -> string
val schedule_of_string : string -> int list

(** {2 Controller hooks}

    Used by {!Instrumented}; not meant for scenario code. *)

val fresh_id : unit -> int
(** Deterministic per-execution id for a new atom. *)

val register : (unit -> int) -> unit
(** Add an atom's state encoder to the memo key (creation order). *)

val enc_obj : Obj.t -> int
(** Encode an observed value: immediates exactly, blocks hashed. *)

val yield : blocking:bool -> unit
(** Scheduler decision point; [blocking] deschedules until a write. *)

val observe : Obj.t -> unit
(** Fold a value read by the running fiber into its history hash. *)

val wrote : unit -> unit
(** Note an atomic write (wakes blocked fibers). *)
