module T = Cn_network.Topology
module B = Cn_network.Balancer
module V = Cn_runtime.Validator
module Sequence = Cn_sequence.Sequence
module A = Instrumented

type t = {
  input_width : int;
  output_width : int;
  entry : int array; (* encoded dests, like Network_runtime *)
  next : int array array;
  fan_out : int array;
  states : int A.t array;
  values : int A.t array;
  mutable tokens : int;
  mutable antitokens : int;
      (* bumped when a traversal STARTS; plain fields are fine (one OS
         thread) and the start/exit gap is exactly what lets the
         conservation check witness an unquiesced validation *)
  mutable validations : (int array * bool) list; (* newest first *)
}

let encode_dest = function
  | T.Bal_input { bal; port = _ } -> bal
  | T.Net_output wire -> -wire - 1

let compile net =
  let n = T.size net in
  let descriptors = Array.init n (T.balancer net) in
  let fan_out = Array.map (fun d -> d.B.fan_out) descriptors in
  {
    input_width = T.input_width net;
    output_width = T.output_width net;
    entry =
      Array.init (T.input_width net) (fun i ->
          encode_dest (T.consumer net (T.Net_input i)));
    next =
      Array.init n (fun b ->
          Array.init fan_out.(b) (fun port ->
              encode_dest (T.consumer net (T.Bal_output { bal = b; port }))));
    fan_out;
    states = Array.map (fun d -> A.make d.B.init_state) descriptors;
    values = Array.init (T.output_width net) (fun i -> A.make i);
    tokens = 0;
    antitokens = 0;
    validations = [];
  }

let input_width t = t.input_width
let output_width t = t.output_width
let port_of s q = ((s mod q) + q) mod q

(* Same crossing semantics as the runtime's Faa mode: a token keys its
   port off the pre-increment state, an antitoken off the
   post-decrement state. *)
let rec walk t step dest =
  if dest >= 0 then begin
    let s = A.fetch_and_add t.states.(dest) step in
    let s = if step < 0 then s - 1 else s in
    walk t step t.next.(dest).(port_of s t.fan_out.(dest))
  end
  else dest

let traverse t ~wire =
  t.tokens <- t.tokens + 1;
  let out = -walk t 1 t.entry.(wire) - 1 in
  A.fetch_and_add t.values.(out) t.output_width

let traverse_decrement t ~wire =
  t.antitokens <- t.antitokens + 1;
  let out = -walk t (-1) t.entry.(wire) - 1 in
  A.fetch_and_add t.values.(out) (-t.output_width) - t.output_width

let traverse_batch t ~wire ~n ~f =
  for i = 0 to n - 1 do
    f i (traverse t ~wire)
  done

let traverse_batch_decrement t ~wire ~n ~f =
  for i = 0 to n - 1 do
    f i (traverse_decrement t ~wire)
  done

(* The model runtime has no memory hierarchy to pipeline against; the
   pipelined entry points exist so the checker explores the same service
   protocol whichever drain shape production uses. *)
type buffer = unit

let buffer ~capacity:_ = ()
let traverse_batch_pipelined t () ~wire ~n ~f = traverse_batch t ~wire ~n ~f
let traverse_batch_pipelined_decrement t () ~wire ~n ~f = traverse_batch_decrement t ~wire ~n ~f

let exit_distribution t =
  Array.init t.output_width (fun i ->
      (A.get t.values.(i) - i) / t.output_width)

let quiescent t =
  let dist = exit_distribution t in
  let expected = t.tokens - t.antitokens in
  let report =
    {
      V.subject = "model network quiescence";
      checks =
        [
          {
            V.name = "step-property";
            ok = Sequence.is_step dist;
            detail = Sequence.to_string dist;
          };
          {
            V.name = "conservation";
            ok = Sequence.sum dist = expected;
            detail =
              Printf.sprintf "exited %d, tokens - antitokens = %d"
                (Sequence.sum dist) expected;
          };
        ];
    }
  in
  t.validations <- (dist, V.passed report) :: t.validations;
  report

let tokens t = t.tokens
let antitokens t = t.antitokens
let validations t = List.rev t.validations
let last_validation t = match t.validations with [] -> None | x :: _ -> Some x
