(** {!Cn_runtime.Atomics.S} over the {!Engine} controller: every access
    to a [make] atom is a scheduler decision point, its value is part of
    the explored state, and [relax]/[nap] deschedule the model domain
    until another domain writes.  [make_stat] counters stay silent and
    out of the state key, exactly as the signature licenses.

    Outside an engine execution the operations degrade to plain mutable
    cells, so oracle code can read the final state without scheduling. *)

include Cn_runtime.Atomics.S
