(** The checker checking itself: a miniature of the {e pre-fix} service
    protocol with both original bugs deliberately preserved, so the test
    suite can prove the explorer still finds them.

    The model is one combining lane in front of a single shared counter
    (the "network"), built over {!Instrumented} atomics:

    - {b lifecycle bug}: [drain_to] grabs the state with an exchange and
      decides the final state from what it read {e before} sweeping — a
      drain whose exchange caught a concurrent shutdown's [st_draining]
      re-opens the service after the shutdown stopped it (the race the
      CAS-elected transitions + sticky stop intent in
      {!Cn_service.Service_core} fix);
    - {b admission bug}: [publish] CASes its cell into a slot, raises the
      parked count only {e afterwards}, and never re-checks the service
      state — a publisher that passed the admission check can park after
      the sweep saw the lane empty, handing its traversal to a helper
      past the validated quiescence point (the parked-before-probe +
      re-check-and-withdraw fix).

    Exploring either scenario must produce a failure; the pinned
    schedules are minimal reproducers found by the explorer, checked in
    as engine regression tests. *)

val lifecycle_race : unit -> Engine.scenario
(** A [drain] racing a [shutdown] on the buggy lifecycle. *)

val admission_race : unit -> Engine.scenario
(** Two increments racing a [shutdown] through the buggy publish. *)

val lifecycle_schedule : int list
(** A pinned schedule on which {!lifecycle_race} resurrects the stopped
    service. *)

val admission_schedule : int list
(** A pinned schedule on which {!admission_race} mutates the counter
    after the validated quiescence point. *)
