(* Single OS thread: the "atomicity" of each operation is the absence of
   a yield inside it — the controller interleaves fibers only at the
   [Engine.yield] before each access.  The id gives every atom a
   deterministic (creation-order) identity so values containing atoms
   hash stably across re-executions. *)

type 'a t = { mutable v : 'a; id : int; stat : bool }

let make v =
  let r = { v; id = Engine.fresh_id (); stat = false } in
  Engine.register (fun () -> Engine.enc_obj (Obj.repr r.v));
  r

let make_stat v = { v; id = Engine.fresh_id (); stat = true }

let get r =
  if r.stat then r.v
  else begin
    Engine.yield ~blocking:false;
    let v = r.v in
    Engine.observe (Obj.repr v);
    v
  end

let set r v =
  if r.stat then r.v <- v
  else begin
    Engine.yield ~blocking:false;
    r.v <- v;
    Engine.wrote ()
  end

let compare_and_set r seen v =
  if r.stat then
    if r.v == seen then begin
      r.v <- v;
      true
    end
    else false
  else begin
    Engine.yield ~blocking:false;
    let ok = r.v == seen in
    if ok then begin
      r.v <- v;
      Engine.wrote ()
    end;
    Engine.observe (Obj.repr ok);
    ok
  end

let fetch_and_add r d =
  if r.stat then begin
    let old = r.v in
    r.v <- old + d;
    old
  end
  else begin
    Engine.yield ~blocking:false;
    let old = r.v in
    r.v <- old + d;
    Engine.wrote ();
    Engine.observe (Obj.repr old);
    old
  end

let incr r = ignore (fetch_and_add r 1)
let relax () = Engine.yield ~blocking:true
let nap () = Engine.yield ~blocking:true
