module A = Instrumented

(* A deliberately buggy miniature of the PRE-FIX service protocol: one
   combining lane, a single counter standing in for the network, and the
   two original races preserved verbatim in shape — see the .mli.  Kept
   small so the failing schedules stay short enough to read. *)

let st_running = 0
let st_draining = 1
let st_stopped = 2

type cell = { mutable result : int; done_ : int A.t }

type t = {
  counter : int A.t;
  slots : cell A.t array;
  combining : bool A.t;
  parked : int A.t;
  state : int A.t;
  empty : cell;
  mutable last_validated : int option;
}

let make ~queue () =
  let empty = { result = 0; done_ = A.make 1 } in
  {
    counter = A.make 0;
    slots = Array.init queue (fun _ -> A.make empty);
    combining = A.make false;
    parked = A.make 0;
    state = A.make st_running;
    empty;
    last_validated = None;
  }

(* Caller holds [combining]. *)
let combine t =
  let taken = ref 0 in
  Array.iter
    (fun slot ->
      let c = A.get slot in
      if c != t.empty && A.compare_and_set slot c t.empty then begin
        c.result <- A.fetch_and_add t.counter 1;
        A.set c.done_ 1;
        incr taken
      end)
    t.slots;
  if !taken > 0 then ignore (A.fetch_and_add t.parked (- !taken))

(* BUG (admission): the slot CAS lands first, [parked] rises only
   afterwards, and the service state is never re-checked — the fixed
   protocol raises [parked] before probing and withdraws the cell when
   the state moved. *)
let publish t cell =
  A.set cell.done_ 0;
  let cap = Array.length t.slots in
  let rec find j =
    if j >= cap then false
    else
      let slot = t.slots.(j) in
      if A.get slot == t.empty && A.compare_and_set slot t.empty cell then begin
        A.incr t.parked;
        true
      end
      else find (j + 1)
  in
  find 0

let wait_for t cell =
  while A.get cell.done_ = 0 do
    if A.compare_and_set t.combining false true then begin
      if A.get cell.done_ = 0 then combine t;
      A.set t.combining false
    end
    else A.relax ()
  done;
  cell.result

type error = Overloaded | Closed

let increment t cell =
  if A.get t.state <> st_running then Error Closed
  else if A.compare_and_set t.combining false true then begin
    if A.get t.state <> st_running then begin
      A.set t.combining false;
      Error Closed
    end
    else begin
      if A.get t.parked > 0 then combine t;
      let v = A.fetch_and_add t.counter 1 in
      A.set t.combining false;
      Ok v
    end
  end
  else if publish t cell then Ok (wait_for t cell)
  else Error Overloaded

let quiesced t = A.get t.parked = 0 && not (A.get t.combining)

let sweep t =
  while not (quiesced t) do
    if A.get t.parked > 0 && A.compare_and_set t.combining false true then begin
      combine t;
      A.set t.combining false
    end
    else A.relax ()
  done

let exchange state v =
  let rec go () =
    let s = A.get state in
    if A.compare_and_set state s v then s else go ()
  in
  go ()

(* BUG (lifecycle): [prior] — read before the sweep — decides the final
   state, so a drain that exchanged away a concurrent shutdown's
   [st_draining] re-opens the service after that shutdown stopped it. *)
let drain_to ~final t =
  let prior = exchange t.state st_draining in
  if prior = st_stopped then A.set t.state st_stopped
  else begin
    sweep t;
    t.last_validated <- Some (A.get t.counter);
    A.set t.state final
  end

let drain t = drain_to ~final:st_running t
let shutdown t = drain_to ~final:st_stopped t

(* ---- scenarios ---- *)

let finish t shutdowns () =
  if !shutdowns > 0 && A.get t.state <> st_stopped then
    Some "stopped service resurrected by a racing drain"
  else
    match t.last_validated with
    | Some v when A.get t.state = st_stopped && A.get t.counter <> v ->
        Some
          (Printf.sprintf
             "counter mutated after the validated quiescence point (%d -> %d)" v
             (A.get t.counter))
    | _ -> None

let lifecycle_race () =
  let t = make ~queue:2 () in
  let shutdowns = ref 0 in
  {
    Engine.name = "selftest-lifecycle";
    fibers =
      [|
        (fun () -> drain t);
        (fun () ->
          shutdown t;
          incr shutdowns);
      |];
    finish = finish t shutdowns;
  }

let admission_race () =
  let t = make ~queue:2 () in
  let shutdowns = ref 0 in
  let w cell () = ignore (increment t cell) in
  {
    Engine.name = "selftest-admission";
    fibers =
      [|
        w { result = 0; done_ = A.make 1 };
        w { result = 0; done_ = A.make 1 };
        (fun () ->
          shutdown t;
          incr shutdowns);
      |];
    finish = finish t shutdowns;
  }

(* Reproducers found by [Engine.explore] on the scenarios above (first
   failing schedule in DFS order); regenerate by printing
   [failure.schedule] if the models change. *)
let lifecycle_schedule = [ 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 1; 1; 1; 0 ]

let admission_schedule =
  [
    0; 0; 0; 0; 0; 0; 1; 1; 1; 0; 2; 2; 2; 2; 2; 2; 2; 1; 1; 1; 1; 1; 1; 1; 1;
    1; 1; 1; 1; 1; 1; 1;
  ]
