(* The controller: effect-based fibers over instrumented atomics, plus
   a bounded-preemption DFS over schedules with re-execution and a state
   memo.  Everything runs on one OS thread; "domains" are fibers, and
   the only nondeterminism is the controller's choice of which fiber
   performs its next atomic access. *)

type _ Effect.t += Yield : bool -> unit Effect.t

[@@@atomlint.allow
  "the checker controller runs every model domain as a fiber on one OS \
   thread; its state is single-threaded by construction and wrapping it \
   in atomics would only obscure that invariant"]

(* ---- controller state (one execution at a time) ---- *)

let active = ref false
let cur = ref (-1) (* running fiber, -1 in setup / oracle *)
let write_clock = ref 0
let ids = ref 0
let encoders : (unit -> int) list ref = ref [] (* reversed creation order *)
let read_hash = ref [||]

let fresh_id () =
  incr ids;
  !ids

let register enc = if !active then encoders := enc :: !encoders

(* Immediates encode exactly (tagged so they cannot collide with a block
   hash); blocks go through the structural hash — instrumented atoms
   carry a creation-order id precisely so two distinct cells hash apart. *)
let enc_obj (o : Obj.t) =
  if Obj.is_int o then ((Obj.obj o : int) lsl 1) lor 1
  else (Hashtbl.hash o land 0x3FFFFFFF) lsl 1

let yield ~blocking = if !active && !cur >= 0 then Effect.perform (Yield blocking)

let observe o =
  let c = !cur in
  if !active && c >= 0 then begin
    let rh = !read_hash in
    rh.(c) <- (rh.(c) * 131) + enc_obj o + 1
  end

let own_writes = ref [||]

let wrote () =
  if !active then begin
    incr write_clock;
    let c = !cur in
    if c >= 0 then begin
      let ow = !own_writes in
      ow.(c) <- ow.(c) + 1
    end
  end

(* ---- scenarios and results ---- *)

type scenario = {
  name : string;
  fibers : (unit -> unit) array;
  finish : unit -> string option;
}

type failure = { schedule : int list; reason : string }

type stats = {
  interleavings : int;
  cutoffs : int;
  prunes : int;
  complete : bool;
}

type outcome = { failure : failure option; stats : stats }

(* ---- fibers ---- *)

type fstatus =
  | Done_
  | Raised of exn
  | Paused of bool * (unit, fstatus) Effect.Deep.continuation

type fst =
  | Fresh of (unit -> unit)
  | Runnable of (unit, fstatus) Effect.Deep.continuation
  | RelaxRunnable of (unit, fstatus) Effect.Deep.continuation
      (* paused at a relax/nap, but a write landed inside the current
         spin window, so the next observation round may see fresh state *)
  | Blocked of (unit, fstatus) Effect.Deep.continuation * int
      (* write_clock at the blocking yield: runnable again after any write *)
  | Finished

let run_segment = function
  | Fresh f ->
      Effect.Deep.match_with
        (fun () ->
          f ();
          Done_)
        ()
        {
          retc = Fun.id;
          exnc = (fun e -> Raised e);
          effc =
            (fun (type c) (eff : c Effect.t) ->
              match eff with
              | Yield blocking ->
                  Some
                    (fun (k : (c, fstatus) Effect.Deep.continuation) ->
                      Paused (blocking, k))
              | _ -> None);
        }
  | Runnable k | RelaxRunnable k | Blocked (k, _) -> Effect.Deep.continue k ()
  | Finished -> assert false

(* ---- memo ---- *)

(* Key equality is exact list equality, so hash quality only affects
   speed — fold the whole key (the polymorphic hash would stop after a
   few elements and overfill buckets). *)
module Key = struct
  type t = int list

  let equal = List.equal Int.equal
  let hash l = List.fold_left (fun h x -> (h * 131) + x + 1) 17 l land max_int
end

module Memo = Hashtbl.Make (Key)

(* ---- one (re-)execution ---- *)

type segment_end =
  | Branch of int list * int list (* schedule so far, enabled choices *)
  | Ended of int list * string option
  | Cutoff of int list
  | Pruned

let exec mk ~forced ~budget ~max_steps ~memo ~follow =
  active := true;
  cur := -1;
  write_clock := 0;
  encoders := [];
  ids := 0;
  Fun.protect ~finally:(fun () ->
      active := false;
      cur := -1)
  @@ fun () ->
  let sc = mk () in
  let n = Array.length sc.fibers in
  read_hash := Array.make n 0;
  let fib = Array.map (fun f -> ref (Fresh f)) sc.fibers in
  (* Spin-window base: the write clock (and the fiber's own-write count)
     when the fiber last returned from a relax (or started).  A relax
     whose window contains no write by ANOTHER fiber is certain to
     re-observe identical state — the fiber's own writes inside one spin
     iteration are election/release pairs that restore what it will
     re-read — so blocking it until the next write is sound; a relax
     with an interleaved foreign write stays runnable because the next
     observation round might see the change. *)
  own_writes := Array.make n 0;
  let ow = !own_writes in
  let spin_base = Array.make n 0 in
  let spin_own = Array.make n 0 in
  let window_dirty i = !write_clock - spin_base.(i) > ow.(i) - spin_own.(i) in
  let enabled i =
    match !(fib.(i)) with
    | Fresh _ | Runnable _ | RelaxRunnable _ -> true
    | Blocked (_, c) -> c < !write_clock
    | Finished -> false
  in
  let sched = ref [] (* reversed *) in
  let last = ref (-1) in
  let budget = ref budget in
  let forced = ref forced in
  let steps = ref 0 in
  let state_key () =
    (* Atom values in creation order, then per-fiber (status, read-hash):
       everything the continuation of the execution can depend on. *)
    let atoms = List.rev_map (fun e -> e ()) !encoders in
    let rh = !read_hash in
    let rec per i acc =
      if i < 0 then acc
      else
        let code =
          match !(fib.(i)) with
          | Finished -> 0
          | Fresh _ -> 1
          | Runnable _ -> 2
          | Blocked (_, c) -> if c < !write_clock then 3 else 4
          | RelaxRunnable _ -> 5
        in
        let dirty = if window_dirty i then 1 else 0 in
        per (i - 1) (code :: dirty :: rh.(i) :: acc)
    in
    !last :: per (n - 1) atoms
  in
  let take c =
    (* A switch away from a still-runnable fiber is a preemption. *)
    if !last >= 0 && c <> !last && enabled !last then decr budget;
    sched := c :: !sched;
    last := c;
    cur := c;
    (* Scheduling a fiber out of a relax opens a fresh spin window. *)
    (match !(fib.(c)) with
    | RelaxRunnable _ | Blocked _ | Fresh _ ->
        spin_base.(c) <- !write_clock;
        spin_own.(c) <- ow.(c)
    | _ -> ());
    let st = run_segment !(fib.(c)) in
    cur := -1;
    match st with
    | Done_ ->
        fib.(c) := Finished;
        Ok ()
    | Raised e ->
        fib.(c) := Finished;
        Error (Printf.sprintf "fiber %d raised %s" c (Printexc.to_string e))
    | Paused (false, k) ->
        fib.(c) := Runnable k;
        Ok ()
    | Paused (true, k) ->
        fib.(c) :=
          (if window_dirty c then RelaxRunnable k
           else Blocked (k, !write_clock));
        Ok ()
  in
  let ended reason = Ended (List.rev !sched, reason) in
  let rec loop () =
    let en = List.filter enabled (List.init n Fun.id) in
    match en with
    | [] ->
        let alive =
          List.filter
            (fun i -> match !(fib.(i)) with Finished -> false | _ -> true)
            (List.init n Fun.id)
        in
        if alive = [] then
          ended
            (match sc.finish () with
            | r -> r
            | exception e ->
                Some ("oracle raised " ^ Printexc.to_string e))
        else
          ended
            (Some
               (Printf.sprintf "deadlock: fiber(s) %s blocked forever"
                  (String.concat ", " (List.map string_of_int alive))))
    | _ -> (
        incr steps;
        if !steps > max_steps then Cutoff (List.rev !sched)
        else
          let step c =
            match take c with Ok () -> loop () | Error r -> ended (Some r)
          in
          match !forced with
          | c :: rest ->
              forced := rest;
              step (if List.mem c en then c else List.hd en)
          | [] ->
              if follow then step (if List.mem !last en then !last else List.hd en)
              else
                let options =
                  if !budget > 0 then en
                  else if List.mem !last en then [ !last ]
                  else en
                in
                (match options with
                | [ c ] -> step c
                | _ -> (
                    match memo with
                    | Some tbl -> (
                        let k = state_key () in
                        match Memo.find_opt tbl k with
                        | Some b when b >= !budget -> Pruned
                        | _ ->
                            Memo.replace tbl k !budget;
                            Branch (List.rev !sched, options))
                    | None -> Branch (List.rev !sched, options))))
  in
  loop ()

(* ---- the explorer ---- *)

exception Found of failure

let explore ?(preemptions = 2) ?(max_steps = 10_000) ?(max_execs = 1_000_000)
    ?(memo = true) mk =
  let tbl = if memo then Some (Memo.create 4096) else None in
  let interleavings = ref 0
  and cutoffs = ref 0
  and prunes = ref 0
  and execs = ref 0
  and complete = ref true in
  let rec dfs prefix =
    if !execs >= max_execs then complete := false
    else begin
      incr execs;
      match
        exec mk ~forced:prefix ~budget:preemptions ~max_steps ~memo:tbl
          ~follow:false
      with
      | Branch (sched, options) -> List.iter (fun c -> dfs (sched @ [ c ])) options
      | Ended (sched, Some reason) -> raise (Found { schedule = sched; reason })
      | Ended (_, None) -> incr interleavings
      | Cutoff _ -> incr cutoffs
      | Pruned -> incr prunes
    end
  in
  let failure =
    match dfs [] with () -> None | exception Found f -> Some f
  in
  {
    failure;
    stats =
      {
        interleavings = !interleavings;
        cutoffs = !cutoffs;
        prunes = !prunes;
        complete = !complete;
      };
  }

let replay mk schedule =
  match
    exec mk ~forced:schedule ~budget:max_int ~max_steps:1_000_000 ~memo:None
      ~follow:true
  with
  | Ended (_, None) -> None
  | Ended (sched, Some reason) -> Some { schedule = sched; reason }
  | Cutoff sched ->
      Some { schedule = sched; reason = "replay exceeded the step bound" }
  | Branch _ | Pruned -> assert false

let schedule_to_string s = String.concat ";" (List.map string_of_int s)

let schedule_of_string s =
  if String.trim s = "" then []
  else
    String.split_on_char ';' s
    |> List.map (fun x -> int_of_string (String.trim x))
