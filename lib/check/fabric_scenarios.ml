module V = Cn_runtime.Validator
module Sequence = Cn_sequence.Sequence
module Counting = Cn_core.Counting
module Svc = Scenarios.Svc

(* The production fabric protocol body over instrumented atomics and the
   instrumented model service: what the explorer exercises for the
   hot-resize / elastic-rescale paths. *)
module MS = struct
  include Svc

  let net_count svc =
    Sequence.sum (Model_net.exit_distribution (Svc.runtime svc))
end

module Fab = Cn_fabric.Fabric_core.Make (Instrumented) (MS)

type outcome = Val of int | Rejected | Refused

let op_outcome = function
  | Ok v -> Val v
  | Error Fab.Overloaded -> Rejected
  | Error Fab.Closed -> Refused

type run = {
  rts : Model_net.t list ref; (* every model network spawned, any shard/gen *)
  fab : Fab.t;
  results : (Fab.op * outcome) list ref;
  resizes : (unit, Fab.resize_error) result list ref;
  shutdowns : int ref;
  distinct_incs : bool; (* single-shard, elim off: values must be distinct *)
  allow_busy : bool; (* concurrent rescalers may lose the claim race *)
}

let worker run sess op () =
  let r =
    match op with
    | Fab.Inc -> Fab.increment sess
    | Fab.Dec -> Fab.decrement sess
  in
  run.results := (op, op_outcome r) :: !(run.results)

let resizer run ~shard topo () =
  run.resizes := Fab.resize run.fab ~shard topo :: !(run.resizes)

(* A resizer that retries [Busy] until it owns the shard: two of these
   on one shard force genuinely back-to-back resizes in every
   interleaving — the second claims the slot while the first's park
   list may still be unsealed, the window of the re-arm race. *)
let stubborn_resizer run ~shard topo () =
  let rec go () =
    match Fab.resize run.fab ~shard topo with
    | Error Fab.Busy ->
        Instrumented.relax ();
        go ()
    | r -> run.resizes := r :: !(run.resizes)
  in
  go ()

let scaler run n () =
  run.resizes := Fab.set_shard_count run.fab n :: !(run.resizes)

let rescaler run steps () =
  List.iter
    (fun n -> run.resizes := Fab.set_shard_count run.fab n :: !(run.resizes))
    steps

let drainer run () = ignore (Fab.drain run.fab)

let stopper run () =
  ignore (Fab.shutdown run.fab);
  incr run.shutdowns

(* Certification is pure, deterministic and checked by its own test
   suite; running the eight-pass pipeline inside every interleaving
   would only slow exploration without adding schedule points. *)
let certify_ok _ = Ok ()

let make_run ?(distinct_incs = false) ?(allow_busy = false) ~shards () =
  let rts = ref [] in
  let topo = Counting.network ~w:2 ~t:2 in
  let spawn t =
    let rt = Model_net.compile t in
    rts := rt :: !rts;
    Svc.make ~max_batch:4 ~queue:2 ~validate:V.Off rt
  in
  let fab =
    Fab.make ~validate:V.Off ~spawn ~certify:certify_ok
      (List.init shards (fun _ -> topo))
  in
  { rts; fab; results = ref []; resizes = ref []; shutdowns = ref 0;
    distinct_incs; allow_busy }

let resize_error_string = function
  | Fab.Cert_rejected m -> "certificate rejected: " ^ m
  | Fab.Busy -> "busy"
  | Fab.Bad_shard -> "bad shard"
  | Fab.Fabric_closed -> "fabric closed"

(* The shared oracle, run on the final state with no fiber scheduled. *)
let check run () =
  let fail fmt = Printf.ksprintf Option.some fmt in
  let oks op =
    List.length
      (List.filter
         (fun (o, r) -> o = op && match r with Val _ -> true | _ -> false)
         !(run.results))
  in
  let bad_validation =
    List.exists
      (fun rt ->
        List.exists (fun (_, passed) -> not passed) (Model_net.validations rt))
      !(run.rts)
  in
  let bad_step =
    List.find_opt
      (fun rt -> not (Sequence.is_step (Model_net.exit_distribution rt)))
      !(run.rts)
  in
  let failed_resize =
    List.find_map
      (function
        | Error Fab.Busy when run.allow_busy -> None
        | Error e -> Some e
        | Ok () -> None)
      !(run.resizes)
  in
  if !(run.shutdowns) > 0 && not (Fab.closed run.fab) then
    fail "shutdown returned but the fabric is not closed"
  else if bad_validation then
    fail "a resize/drain/shutdown validation observed a non-quiescent network"
  else
    match bad_step with
    | Some rt ->
        fail "a shard's final distribution is not a step: %s"
          (Sequence.to_string (Model_net.exit_distribution rt))
    | None -> (
        match failed_resize with
        | Some e -> fail "resize failed: %s" (resize_error_string e)
        | None ->
            if
              !(run.shutdowns) = 0
              && List.exists (fun (_, r) -> r = Refused) !(run.results)
            then fail "an operation was refused but the fabric never closed"
            else begin
              let expected = oks Fab.Inc - oks Fab.Dec in
              let got = Fab.read run.fab in
              if got <> expected then
                fail "fabric read %d but ok(inc) - ok(dec) = %d" got expected
              else if run.distinct_incs then begin
                let vals =
                  List.filter_map
                    (fun (o, r) ->
                      match (o, r) with Fab.Inc, Val v -> Some v | _ -> None)
                    !(run.results)
                in
                let sorted = List.sort_uniq compare vals in
                if List.length sorted <> List.length vals then
                  fail "duplicate values in a shard's stream across resize: %s"
                    (String.concat "," (List.map string_of_int vals))
                else None
              end
              else None
            end)

(* A key the current router sends to [shard] — routing is deterministic,
   so this probe is schedule-independent. *)
let key_for run shard =
  let rec go k =
    if Fab.route run.fab k = shard then k
    else if k > 1_000 then invalid_arg "key_for: no key found"
    else go (k + 1)
  in
  go 0

let resize_vs_submit () =
  let run = make_run ~distinct_incs:true ~shards:1 () in
  let s0 = Fab.session ~key:0 run.fab in
  let s1 = Fab.session ~key:1 run.fab in
  {
    Engine.name = "fabric-resize-vs-submit";
    fibers =
      [|
        worker run s0 Fab.Inc;
        worker run s1 Fab.Inc;
        resizer run ~shard:0 (Counting.network ~w:2 ~t:2);
      |];
    finish = check run;
  }

let drain_vs_route () =
  let run = make_run ~shards:2 () in
  let sa = Fab.session ~key:(key_for run 0) run.fab in
  let sb = Fab.session ~key:(key_for run 1) run.fab in
  {
    Engine.name = "fabric-drain-vs-route";
    fibers = [| worker run sa Fab.Inc; worker run sb Fab.Inc; drainer run |];
    finish = check run;
  }

let shrink_vs_submit () =
  let run = make_run ~distinct_incs:true ~shards:2 () in
  (* The worker is pinned to the shard being retired, so the operation
     either completes there before its quiescent validation point or
     parks and replays through the rerouted survivor. *)
  let s = Fab.session ~key:(key_for run 1) run.fab in
  {
    Engine.name = "fabric-shrink-vs-submit";
    fibers = [| worker run s Fab.Inc; scaler run 1 |];
    finish = check run;
  }

let grow_vs_submit () =
  let run = make_run ~distinct_incs:true ~shards:1 () in
  let s = Fab.session ~key:0 run.fab in
  {
    Engine.name = "fabric-grow-vs-submit";
    fibers = [| worker run s Fab.Inc; scaler run 2 |];
    finish = check run;
  }

let shutdown_vs_submit () =
  let run = make_run ~shards:1 () in
  let s = Fab.session ~key:0 run.fab in
  {
    Engine.name = "fabric-shutdown-vs-submit";
    fibers = [| worker run s Fab.Inc; stopper run |];
    finish = check run;
  }

let resize_vs_resize () =
  (* Two stubborn resizers guarantee two back-to-back swaps of the same
     shard in every interleaving: the second can claim the slot between
     the first's reopen and its seal of the park list, so a parked
     worker's cell survives only if the re-arm refuses to overwrite an
     unsealed list (a dropped cell deadlocks its worker, which the
     engine reports). *)
  let run = make_run ~distinct_incs:true ~shards:1 () in
  let s = Fab.session ~key:0 run.fab in
  let topo = Counting.network ~w:2 ~t:2 in
  {
    Engine.name = "fabric-resize-vs-resize";
    fibers =
      [|
        worker run s Fab.Inc;
        stubborn_resizer run ~shard:0 topo;
        stubborn_resizer run ~shard:0 topo;
      |];
    finish = check run;
  }

let resize_vs_shrink () =
  (* A hot-resize and a shrink contend for the same doomed shard; the
     loser of the claim race reports [Busy] (allowed here), and the
     pinned worker must still be parked/replayed exactly once. *)
  let run = make_run ~allow_busy:true ~shards:2 () in
  let s = Fab.session ~key:(key_for run 1) run.fab in
  {
    Engine.name = "fabric-resize-vs-shrink";
    fibers =
      [|
        worker run s Fab.Inc;
        resizer run ~shard:1 (Counting.network ~w:2 ~t:2);
        scaler run 1;
      |];
    finish = check run;
  }

let shrink_grow_vs_session () =
  (* A session with a warm per-shard cache (from the setup increment)
     submits while its shard is retired and then re-created.  The
     re-created slot must carry a fresh generation: if it restarted at
     the cached one, the stale session would target the shut-down
     service and retry [Closed] forever (a step-bound cutoff). *)
  let run = make_run ~shards:2 () in
  let s = Fab.session ~key:(key_for run 1) run.fab in
  worker run s Fab.Inc ();
  {
    Engine.name = "fabric-shrink-grow-vs-session";
    fibers = [| worker run s Fab.Inc; rescaler run [ 1; 2 ] |];
    finish = check run;
  }

let all =
  [
    ("fabric-resize-vs-submit", resize_vs_submit);
    ("fabric-resize-vs-resize", resize_vs_resize);
    ("fabric-resize-vs-shrink", resize_vs_shrink);
    ("fabric-drain-vs-route", drain_vs_route);
    ("fabric-shrink-vs-submit", shrink_vs_submit);
    ("fabric-grow-vs-submit", grow_vs_submit);
    ("fabric-shrink-grow-vs-session", shrink_grow_vs_session);
    ("fabric-shutdown-vs-submit", shutdown_vs_submit);
  ]
