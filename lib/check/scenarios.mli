(** The checked scenarios: the {e real} service protocol
    ({!Cn_service.Service_core.Make} — the same functor body production
    runs) instantiated with {!Instrumented} atomics over a {!Model_net},
    driven by 2–4 model domains through tiny C(2,2) / C(4,4) networks.

    Every scenario's oracle checks, on the final state:

    - {b stopped is terminal}: once any [shutdown] has returned, the
      service is [`Stopped] — no racing [drain] resurrected it;
    - {b frozen after stop}: a stopped service's exit distribution is
      exactly what its last quiescent validation saw — no operation
      traversed the network past the validation point;
    - {b validations are quiescent}: every report a [drain]/[shutdown]
      produced passed its step-property and conservation checks;
    - {b conservation}: tokens handed out equal successful increments
      minus successful decrements (Theorem 4.2's quiescent step property
      plus value conservation);
    - {b step property} on the final distribution;
    - {b liveness} (via the engine): every accepted operation's wait
      completes — a cell parked forever or an [await] that never
      returns shows up as a deadlock.

    The module {!Svc} is exposed so tests can build bespoke scenarios
    against the instrumented instantiation. *)

module Svc : Cn_service.Service_core.S with type rt = Model_net.t

val drain_vs_shutdown : unit -> Engine.scenario
(** One worker incrementing while a [drain] and a [shutdown] race on a
    C(2,2) service — the lifecycle-race scenario. *)

val late_admission : unit -> Engine.scenario
(** Two workers contending for one lane's combiner flag (forcing the
    park/publish path) while a [shutdown] races the admission check —
    the admission-hole scenario.  Elimination off, so successful
    increment values must also be distinct. *)

val mixed_ops_drain : unit -> Engine.scenario
(** Increments and decrements (elimination on) racing a mid-flight
    [drain] that re-opens the service. *)

val submit_await_shutdown : unit -> Engine.scenario
(** The asynchronous [submit]/[await] path racing a [shutdown]. *)

val c44_shutdown : unit -> Engine.scenario
(** Three workers on distinct wires of a C(4,4) network racing a
    [shutdown] — wider network, checks the oracles beyond one lane. *)

val all : (string * (unit -> Engine.scenario)) list
(** Every scenario above, keyed by name, in a stable order. *)
