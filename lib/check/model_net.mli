(** A miniature network runtime over {!Instrumented} atomics — the
    [RUNTIME] argument the checker feeds to {!Cn_service.Service_core.Make}.

    Semantically it is {!Cn_runtime.Network_runtime} in [Faa] mode with
    every padding/layout/metrics concern stripped: the same encoded-dest
    walk, the same symmetric-modulo port arithmetic, the same
    [values.(i) = i, i + t, ...] exit tallies.  Every balancer crossing
    and exit bump is a scheduler decision point, so a traversal that
    races a drain's validation read is an interleaving the explorer
    actually visits.

    Beyond the [RUNTIME] surface it records the evidence the scenario
    oracles check: a count of tokens and antitokens that {e started}
    traversing, and the distribution observed by every quiescent
    validation. *)

type t

val compile : Cn_network.Topology.t -> t

val input_width : t -> int
val output_width : t -> int
val traverse : t -> wire:int -> int
val traverse_decrement : t -> wire:int -> int
val traverse_batch : t -> wire:int -> n:int -> f:(int -> int -> unit) -> unit

val traverse_batch_decrement : t -> wire:int -> n:int -> f:(int -> int -> unit) -> unit
(** Batched antitoken runs, one schedulable crossing at a time — the
    model analogue of [Network_runtime.traverse_batch_decrement]. *)

type buffer = unit
(** The model has no memory hierarchy to pipeline against; its pipelined
    entry points delegate to the sequential batch walks so the checker
    still explores services built with [~pipeline:true]. *)

val buffer : capacity:int -> buffer
val traverse_batch_pipelined : t -> buffer -> wire:int -> n:int -> f:(int -> int -> unit) -> unit

val traverse_batch_pipelined_decrement :
  t -> buffer -> wire:int -> n:int -> f:(int -> int -> unit) -> unit

val quiescent : t -> Cn_runtime.Validator.report
(** Step-property plus token-conservation checks on the current exit
    distribution, reading through instrumented atomics (the reads are
    schedulable, like the real validator's).  Every call is recorded for
    {!validations}. *)

val exit_distribution : t -> int array
(** Tokens handed out per output wire.  Reads are silent outside an
    engine execution, so oracles can call this on the final state. *)

val tokens : t -> int
(** Traversals started with {!traverse} / {!traverse_batch}. *)

val antitokens : t -> int
(** Traversals started with {!traverse_decrement}. *)

val validations : t -> (int array * bool) list
(** Every {!quiescent} call, oldest first: the distribution it observed
    and whether its checks passed. *)

val last_validation : t -> (int array * bool) option
