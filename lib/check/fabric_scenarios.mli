(** Fabric resize scenarios: the {e real} shard-fabric protocol
    ({!Cn_fabric.Fabric_core.Make} — the same functor body production
    runs) instantiated with {!Instrumented} atomics over the checker's
    model service ({!Scenarios.Svc} plus a [net_count] one-liner),
    driven over miniature C(2,2) shards.

    Every scenario's oracle checks, on the final state:

    - {b closed is terminal}: once a fabric [shutdown] has returned,
      [closed] holds;
    - {b validations are quiescent}: every validation any spawned model
      network recorded — including those run by the hot-resize drain —
      passed;
    - {b step property} on every spawned network's final distribution
      (pre-resize services included);
    - {b resizes succeed}: no resize/rescale may fail (certification
      is stubbed [Ok]) — except that scenarios with contending
      rescalers accept [Busy] from the claim-race loser;
    - {b no spurious refusal}: an operation may only return [Closed]
      if the scenario actually shuts the fabric down — a racing resize
      must park and replay, never refuse;
    - {b conservation}: the fabric's combining [read] equals successful
      increments minus successful decrements, across every resize,
      shrink and grow — the retired-fold accounting;
    - {b continuity} (single-shard, elimination off): the shard's value
      stream stays duplicate-free across the base fold at a resize;
    - {b liveness} (via the engine): parked operations are replayed —
      a cell never completed shows up as a deadlock.

    Certification is stubbed to [Ok]: the eight-pass pipeline is pure
    and deterministic (no schedule points), and has its own suite. *)

module Fab :
  Cn_fabric.Fabric_core.S
    with type svc = Scenarios.Svc.t
     and type topo_key = Cn_network.Topology.t

val resize_vs_submit : unit -> Engine.scenario
(** Two workers on distinct keys of a one-shard fabric racing a
    hot-resize of that shard — operations must complete before the
    quiescent validation point or park and replay exactly once. *)

val resize_vs_resize : unit -> Engine.scenario
(** Two resizers (each retrying [Busy] until it owns the shard) force
    back-to-back swaps of one shard under a racing worker — the
    re-arming of the park buffer must never overwrite the previous
    resize's still-unsealed list (a dropped parked cell deadlocks). *)

val resize_vs_shrink : unit -> Engine.scenario
(** A hot-resize contending with [set_shard_count] for the shard being
    retired; the claim-race loser may report [Busy], and the pinned
    worker is parked/replayed exactly once either way. *)

val drain_vs_route : unit -> Engine.scenario
(** Workers pinned to both shards of a two-shard fabric racing a
    fabric-wide [drain] (per-shard quiesce/validate/re-admit). *)

val shrink_vs_submit : unit -> Engine.scenario
(** A worker pinned to the shard being retired while
    [set_shard_count] shrinks 2 → 1 — the reroute-and-replay path. *)

val grow_vs_submit : unit -> Engine.scenario
(** A worker racing [set_shard_count] growing 1 → 2 — the
    router-republish ordering on the grow path. *)

val shrink_grow_vs_session : unit -> Engine.scenario
(** A session whose per-shard cache was warmed before the schedule
    starts submits across a shrink-then-grow of its home shard — the
    re-created slot's generation must be monotonic (never reused), or
    the stale cached session livelocks on the dead service. *)

val shutdown_vs_submit : unit -> Engine.scenario
(** A worker racing the terminal fabric [shutdown]; the operation
    completes before the validation point or fails [Closed]. *)

val all : (string * (unit -> Engine.scenario)) list
(** Every scenario above, keyed by name, in a stable order. *)
