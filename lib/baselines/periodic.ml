open Cn_network
module Params = Cn_core.Params

(* A-cochain: indices whose two low-order bits agree (i mod 4 ∈ {0,3});
   B-cochain: indices whose two low-order bits differ (i mod 4 ∈ {1,2}).
   The AHS BLOCK recurses on the cochains — not on the even/odd
   subsequences, which would give a plain butterfly and does NOT yield a
   counting network when cascaded. *)
let cochains ins =
  let a = ref [] and b = ref [] in
  for i = Array.length ins - 1 downto 0 do
    if i mod 4 = 0 || i mod 4 = 3 then a := ins.(i) :: !a else b := ins.(i) :: !b
  done;
  (Array.of_list !a, Array.of_list !b)

let rec block_wires b ins =
  let w = Array.length ins in
  if not (Params.is_power_of_two w) || w < 2 then
    invalid_arg
      (Printf.sprintf "Periodic.block_wires: width must be a power of two >= 2 (got w=%d)" w);
  if w = 2 then begin
    let top, bottom = Builder.balancer2 b ins.(0) ins.(1) in
    [| top; bottom |]
  end
  else begin
    let ia, ib = cochains ins in
    let g = block_wires b ia in
    let h = block_wires b ib in
    let half = w / 2 in
    let z = Array.make w ins.(0) in
    for i = 0 to half - 1 do
      let top, bottom = Builder.balancer2 b g.(i) h.(i) in
      z.(2 * i) <- top;
      z.((2 * i) + 1) <- bottom
    done;
    z
  end

let block w = Builder.build ~input_width:w (fun b ins -> block_wires b ins)

let wires b ins =
  let w = Array.length ins in
  let k = Params.ilog2 w in
  let rec go i wires = if i >= k then wires else go (i + 1) (block_wires b wires) in
  go 0 ins

let network w =
  if not (Params.is_power_of_two w) || w < 2 then
    invalid_arg
      (Printf.sprintf "Periodic.network: width must be a power of two >= 2 (got w=%d)" w);
  Builder.build ~input_width:w (fun b ins -> wires b ins)

let depth_formula ~w =
  let k = Params.ilog2 w in
  k * k

let size_formula ~w = w / 2 * depth_formula ~w
