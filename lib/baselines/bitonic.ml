open Cn_network
module Params = Cn_core.Params

let even a = Array.init ((Array.length a + 1) / 2) (fun i -> a.(2 * i))
let odd a = Array.init (Array.length a / 2) (fun i -> a.((2 * i) + 1))

let rec merger_wires b (x, y) =
  let half = Array.length x in
  if Array.length y <> half then
    invalid_arg
      (Printf.sprintf "Bitonic.merger_wires: halves differ in length (%d and %d)" half
         (Array.length y));
  if not (Params.is_power_of_two half) then
    invalid_arg
      (Printf.sprintf "Bitonic.merger_wires: width must be a power of two (got %d)" (2 * half));
  if half = 1 then begin
    let top, bottom = Builder.balancer2 b x.(0) y.(0) in
    [| top; bottom |]
  end
  else begin
    let g = merger_wires b (even x, odd y) in
    let h = merger_wires b (odd x, even y) in
    let t = 2 * half in
    let z = Array.make t x.(0) in
    for i = 0 to half - 1 do
      let top, bottom = Builder.balancer2 b g.(i) h.(i) in
      z.(2 * i) <- top;
      z.((2 * i) + 1) <- bottom
    done;
    z
  end

let merger t =
  if not (Params.is_power_of_two t) || t < 2 then
    invalid_arg
      (Printf.sprintf "Bitonic.merger: width must be a power of two >= 2 (got t=%d)" t);
  Builder.build ~input_width:t (fun b ins ->
      let half = t / 2 in
      merger_wires b (Array.sub ins 0 half, Array.sub ins half half))

let rec wires b ins =
  let w = Array.length ins in
  if not (Params.is_power_of_two w) || w < 2 then
    invalid_arg
      (Printf.sprintf "Bitonic.wires: width must be a power of two >= 2 (got w=%d)" w);
  if w = 2 then begin
    let top, bottom = Builder.balancer2 b ins.(0) ins.(1) in
    [| top; bottom |]
  end
  else begin
    let half = w / 2 in
    let x = wires b (Array.sub ins 0 half) in
    let y = wires b (Array.sub ins half half) in
    merger_wires b (x, y)
  end

let network w =
  if not (Params.is_power_of_two w) || w < 2 then
    invalid_arg
      (Printf.sprintf "Bitonic.network: width must be a power of two >= 2 (got w=%d)" w);
  Builder.build ~input_width:w (fun b ins -> wires b ins)

let depth_formula ~w =
  let k = Params.ilog2 w in
  k * (k + 1) / 2

let size_formula ~w = w / 2 * depth_formula ~w
