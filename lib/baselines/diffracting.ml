open Cn_network
module Params = Cn_core.Params

(* Token [i] descends by the bits of its arrival index, least significant
   first; leaf for path [p] therefore serves output wires congruent to
   [p] modulo the subtree width, so child 0 serves the even-indexed
   outputs and child 1 the odd-indexed ones. *)
let rec tree b ~w in_wire =
  if w = 1 then [| in_wire |]
  else begin
    let outs = Builder.add_balancer b ~fan_out:2 [| in_wire |] in
    let evens = tree b ~w:(w / 2) outs.(0) in
    let odds = tree b ~w:(w / 2) outs.(1) in
    Array.init w (fun i -> if i mod 2 = 0 then evens.(i / 2) else odds.(i / 2))
  end

let network w =
  if not (Params.is_power_of_two w) || w < 2 then
    invalid_arg
      (Printf.sprintf "Diffracting.network: width must be a power of two >= 2 (got w=%d)" w);
  Builder.build ~input_width:1 (fun b ins -> tree b ~w ins.(0))

let depth_formula ~w = Params.ilog2 w

let size_formula ~w = w - 1
