(** The bitonic counting network of Aspnes, Herlihy and Shavit
    (“Counting networks”, JACM 41(5), Section 3) — the prime regular
    baseline the paper compares against.

    [BITONIC(w)] is regular of width [w = 2^k], built from
    [(2,2)]-balancers, with depth [lgw·(lgw+1)/2] and amortized
    contention [Θ(n·lg²w / w)] (Dwork–Herlihy–Waarts). *)

open Cn_network

val merger_wires :
  Builder.t -> Builder.wire array * Builder.wire array -> Builder.wire array
(** [merger_wires b (x, y)] appends the bitonic merger [MERGER(t)]
    ([t = length x + length y]) to builder [b]: it merges two step input
    sequences of width [t/2] each into one step output sequence.
    Recursion: [M0] merges [x_even ++ y_odd], [M1] merges
    [x_odd ++ y_even], and a final layer of balancers joins output [i] of
    [M0] with output [i] of [M1] into outputs [2i, 2i+1].
    @raise Invalid_argument unless both halves have equal power-of-two
    length. *)

val merger : int -> Topology.t
(** [merger t] is the standalone [MERGER(t)]; first [t/2] wires carry
    [x], the rest [y].  @raise Invalid_argument unless [t >= 2] is a
    power of two. *)

val wires : Builder.t -> Builder.wire array -> Builder.wire array
(** [wires b ins] appends [BITONIC(w)] to builder [b]. *)

val network : int -> Topology.t
(** [network w] is [BITONIC(w)].
    @raise Invalid_argument unless [w >= 2] is a power of two. *)

val depth_formula : w:int -> int
(** [depth_formula ~w = lgw·(lgw+1)/2] — same as [C(w, t)]'s depth. *)

val size_formula : w:int -> int
(** Number of balancers: [w/2] per layer times the depth. *)
