(** The diffracting tree of Shavit and Zemach (ACM TOCS 14(4)) — the
    other irregular baseline the paper discusses (Section 1.4.1).

    A binary tree of [(1,2)]-balancers: one input wire, [w] output wires,
    depth [lg w].  The published construction adds randomized “prism”
    arrays in front of each balancer so colliding token pairs can
    eliminate each other; the prism is a probabilistic contention
    optimization that does not change the quiescent counting behaviour,
    and the paper's point about this network — amortized contention
    [Θ(n)] under an adversary that piles all tokens on the root — holds
    with or without it.  We therefore implement the deterministic tree
    core here (the adversarial [Θ(n)] behaviour is exhibited in
    [Cn_sim]); see DESIGN.md, substitutions. *)

open Cn_network

val network : int -> Topology.t
(** [network w] is the diffracting-tree topology with 1 input and [w]
    outputs.  Leaf [i] of the tree is output wire [i], ordered so that
    the quiescent outputs satisfy the step property.
    @raise Invalid_argument unless [w >= 2] is a power of two. *)

val depth_formula : w:int -> int
(** [depth_formula ~w = lg w]. *)

val size_formula : w:int -> int
(** Number of balancers: [w - 1]. *)
