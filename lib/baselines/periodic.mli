(** The periodic counting network of Aspnes, Herlihy and Shavit
    (“Counting networks”, JACM 41(5), Section 4).

    [PERIODIC(w)] cascades [lg w] identical [BLOCK(w)] networks; depth
    [lg²w], amortized contention [O(n·lg³w / w)]
    (Dwork–Herlihy–Waarts). *)

open Cn_network

val block_wires : Builder.t -> Builder.wire array -> Builder.wire array
(** [block_wires b ins] appends one [BLOCK(w)] to builder [b]:
    recursively a block on the {e A-cochain} (indices whose two
    low-order bits agree, [i mod 4 ∈ {0,3}]) and one on the
    {e B-cochain} ([i mod 4 ∈ {1,2}]), whose outputs [i] are joined
    pairwise into outputs [2i, 2i+1].
    @raise Invalid_argument unless the width is a power of two [>= 2]. *)

val block : int -> Topology.t
(** [block w] is the standalone [BLOCK(w)]. *)

val wires : Builder.t -> Builder.wire array -> Builder.wire array
(** [wires b ins] appends [PERIODIC(w)] — [lg w] cascaded blocks. *)

val network : int -> Topology.t
(** [network w] is [PERIODIC(w)].
    @raise Invalid_argument unless [w >= 2] is a power of two. *)

val depth_formula : w:int -> int
(** [depth_formula ~w = lg²w]. *)

val size_formula : w:int -> int
(** Number of balancers: [(w/2)·lg²w]. *)
