(** Batcher's bitonic sorting network (Batcher 1968) as a comparator
    network — the classical [O(lg²w)]-depth sorter the paper's sorting
    byproduct (Section 7) is compared against in experiment E7. *)

open Cn_core

val network : int -> Sorting.t
(** [network w] is Batcher's bitonic sorter on [w] channels, expressed in
    the same comparator representation as the networks extracted from
    balancing networks ([Sorting.apply] etc. — descending order, to
    match).  @raise Invalid_argument unless [w >= 2] is a power of
    two. *)

val depth_formula : w:int -> int
(** [depth_formula ~w = lgw·(lgw+1)/2]. *)

val comparator_count_formula : w:int -> int
(** [(w/4)·lgw·(lgw+1)]. *)
