open Cn_core

(* The bitonic counting network is exactly Batcher's bitonic sorter under
   the balancer-to-comparator substitution (Aspnes–Herlihy–Shavit built it
   from Batcher's network in the first place), so extracting comparators
   from BITONIC(w) yields Batcher's network directly. *)
let network w = Sorting.of_topology (Bitonic.network w)

let depth_formula ~w = Bitonic.depth_formula ~w

let comparator_count_formula ~w =
  let k = Params.ilog2 w in
  w * k * (k + 1) / 4
