let source_to_string = function
  | Topology.Net_input i -> Printf.sprintf "in%d" i
  | Topology.Bal_output { bal; port } -> Printf.sprintf "b%d.%d" bal port

let to_string net =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "counting-network v1\n";
  Buffer.add_string buf (Printf.sprintf "inputs %d\n" (Topology.input_width net));
  for b = 0 to Topology.size net - 1 do
    let d = Topology.balancer net b in
    Buffer.add_string buf
      (Printf.sprintf "balancer %d %d %d %d :" b d.Balancer.fan_in d.Balancer.fan_out
         d.Balancer.init_state);
    Array.iter
      (fun s ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (source_to_string s))
      (Topology.feeds net b);
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "outputs :";
  Array.iter
    (fun s ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (source_to_string s))
    (Topology.outputs net);
  Buffer.add_char buf '\n';
  Buffer.contents buf

exception Parse_error of int * string

let parse_source lineno tok =
  let fail reason = raise (Parse_error (lineno, reason)) in
  if String.length tok > 2 && String.sub tok 0 2 = "in" then
    match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
    | Some i -> Topology.Net_input i
    | None -> fail (Printf.sprintf "bad input-wire token %S" tok)
  else if String.length tok > 1 && tok.[0] = 'b' then begin
    match String.index_opt tok '.' with
    | None -> fail (Printf.sprintf "bad balancer token %S (missing port)" tok)
    | Some dot -> (
        let bal = int_of_string_opt (String.sub tok 1 (dot - 1)) in
        let port = int_of_string_opt (String.sub tok (dot + 1) (String.length tok - dot - 1)) in
        match (bal, port) with
        | Some bal, Some port -> Topology.Bal_output { bal; port }
        | _ -> fail (Printf.sprintf "bad balancer token %S" tok))
  end
  else fail (Printf.sprintf "unknown source token %S" tok)

let split_words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* Syntax only: tokens, integers and dense balancer ids.  Structural
   invariants (arities, consumption, cycles) are Raw.check's job, so a
   malformed file is diagnosed completely instead of at first fault. *)
let parse_raw text =
  let lines = String.split_on_char '\n' text in
  try
    let input_width = ref None in
    let balancers = ref [] (* reversed: (descriptor, feeds) *) in
    let next_id = ref 0 in
    let outputs = ref None in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let fail reason = raise (Parse_error (lineno, reason)) in
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else
          match split_words line with
          | [ "counting-network"; "v1" ] ->
              if lineno <> 1 && !input_width <> None then fail "duplicate header"
          | "counting-network" :: v :: _ -> fail (Printf.sprintf "unsupported version %S" v)
          | [ "inputs"; w ] -> (
              match int_of_string_opt w with
              | Some w when !input_width = None -> input_width := Some w
              | Some _ -> fail "duplicate inputs line"
              | None -> fail (Printf.sprintf "bad input width %S" w))
          | "balancer" :: id :: fan_in :: fan_out :: init_state :: ":" :: srcs -> (
              match
                (int_of_string_opt id, int_of_string_opt fan_in, int_of_string_opt fan_out,
                 int_of_string_opt init_state)
              with
              | Some id, Some fan_in, Some fan_out, Some init_state ->
                  if id <> !next_id then
                    fail (Printf.sprintf "balancer ids must be dense and ordered (got %d, expected %d)" id !next_id);
                  incr next_id;
                  let descriptor = { Raw.fan_in; fan_out; init_state } in
                  let feeds = Array.of_list (List.map (parse_source lineno) srcs) in
                  balancers := (descriptor, feeds) :: !balancers
              | _ -> fail "bad balancer line")
          | "outputs" :: ":" :: srcs ->
              if !outputs <> None then fail "duplicate outputs line";
              outputs := Some (Array.of_list (List.map (parse_source lineno) srcs))
          | _ -> fail (Printf.sprintf "unrecognized line %S" line))
      lines;
    match (!input_width, !outputs) with
    | None, _ -> Error "missing 'inputs' line"
    | _, None -> Error "missing 'outputs' line"
    | Some input_width, Some outputs ->
        let balancers = Array.of_list (List.rev !balancers) in
        Ok
          {
            Raw.input_width;
            balancers = Array.map fst balancers;
            feeds = Array.map snd balancers;
            outputs;
          }
  with Parse_error (lineno, reason) -> Error (Printf.sprintf "line %d: %s" lineno reason)

let of_string text =
  match parse_raw text with
  | Error _ as e -> e
  | Ok raw -> (
      match Raw.validate raw with
      | Ok net -> Ok net
      | Error violations ->
          Error
            ("lint: "
            ^ String.concat "; "
                (List.map (Format.asprintf "%a" Raw.pp_violation) violations)))
