module Sequence = Cn_sequence.Sequence

let check_input net x =
  if Array.length x <> Topology.input_width net then
    invalid_arg "Eval: input sequence has wrong length";
  Array.iter (fun v -> if v < 0 then invalid_arg "Eval: negative token count") x

let quiescent_full net x =
  check_input net x;
  let n = Topology.size net in
  (* Token count flowing on each balancer input port, filled in
     topological order. *)
  let in_counts = Array.init n (fun b -> Array.make (Topology.balancer net b).Balancer.fan_in 0) in
  let out_wire_counts = Array.make (Topology.output_width net) 0 in
  let states = Array.make n 0 in
  let deliver s count =
    match Topology.consumer net s with
    | Topology.Bal_input { bal; port } -> in_counts.(bal).(port) <- count
    | Topology.Net_output i -> out_wire_counts.(i) <- count
  in
  Array.iteri (fun i c -> deliver (Topology.Net_input i) c) x;
  Array.iter
    (fun b ->
      let descriptor = Topology.balancer net b in
      let tokens = Sequence.sum in_counts.(b) in
      let outs = Balancer.output_counts descriptor ~tokens in
      states.(b) <- Balancer.state_after descriptor ~tokens;
      Array.iteri (fun port c -> deliver (Topology.Bal_output { bal = b; port }) c) outs)
    (Topology.topo_order net);
  (out_wire_counts, states)

let quiescent net x = fst (quiescent_full net x)

(* Token-level stepper.  A token's position is the balancer it is about to
   cross; mutable balancer states advance as tokens win. *)

type stepper = {
  net : Topology.t;
  states : int array;
  out_counts : int array;
}

let make_stepper net =
  {
    net;
    states = Array.init (Topology.size net) (fun b -> (Topology.balancer net b).Balancer.init_state);
    out_counts = Array.make (Topology.output_width net) 0;
  }

(* Advance a token sitting at balancer [b]: returns the next balancer, or
   the exit wire. *)
let step st b =
  let descriptor = Topology.balancer st.net b in
  let s = st.states.(b) in
  st.states.(b) <- (s + 1) mod descriptor.Balancer.fan_out;
  match Topology.consumer st.net (Topology.Bal_output { bal = b; port = s }) with
  | Topology.Bal_input { bal; port = _ } -> Some bal
  | Topology.Net_output i ->
      st.out_counts.(i) <- st.out_counts.(i) + 1;
      None

let quiescent_net net x =
  if Array.length x <> Topology.input_width net then
    invalid_arg "Eval.quiescent_net: input sequence has wrong length";
  let n = Topology.size net in
  let in_nets = Array.init n (fun b -> Array.make (Topology.balancer net b).Balancer.fan_in 0) in
  let out_nets = Array.make (Topology.output_width net) 0 in
  let deliver s count =
    match Topology.consumer net s with
    | Topology.Bal_input { bal; port } -> in_nets.(bal).(port) <- count
    | Topology.Net_output i -> out_nets.(i) <- count
  in
  Array.iteri (fun i c -> deliver (Topology.Net_input i) c) x;
  Array.iter
    (fun b ->
      let descriptor = Topology.balancer net b in
      let total = Sequence.sum in_nets.(b) in
      let outs = Balancer.net_output_counts descriptor ~net:total in
      Array.iteri (fun port c -> deliver (Topology.Bal_output { bal = b; port }) c) outs)
    (Topology.topo_order net);
  out_nets

let trace_signed ?(seed = 0) net ~tokens ~antitokens =
  let w = Topology.input_width net in
  if Array.length tokens <> w || Array.length antitokens <> w then
    invalid_arg "Eval.trace_signed: input sequences have wrong length";
  Array.iter (fun v -> if v < 0 then invalid_arg "Eval.trace_signed: negative count") tokens;
  Array.iter (fun v -> if v < 0 then invalid_arg "Eval.trace_signed: negative count") antitokens;
  let st = make_stepper net in
  let out_nets = Array.make (Topology.output_width net) 0 in
  let rng = Random.State.make [| seed |] in
  (* In-flight (anti)tokens as (sign, balancer); bare wires short-circuit. *)
  let inflight = ref [] in
  let enter sign wire =
    match Topology.consumer net (Topology.Net_input wire) with
    | Topology.Bal_input { bal; port = _ } -> inflight := (sign, bal) :: !inflight
    | Topology.Net_output i -> out_nets.(i) <- out_nets.(i) + sign
  in
  Array.iteri (fun wire count -> for _ = 1 to count do enter 1 wire done) tokens;
  Array.iteri (fun wire count -> for _ = 1 to count do enter (-1) wire done) antitokens;
  let items = ref (Array.of_list !inflight) in
  let live = ref (Array.length !items) in
  while !live > 0 do
    let pick = Random.State.int rng !live in
    let sign, b = !items.(pick) in
    let descriptor = Topology.balancer st.net b in
    let q = descriptor.Balancer.fan_out in
    let port =
      if sign > 0 then begin
        let s = st.states.(b) in
        st.states.(b) <- (s + 1) mod q;
        s
      end
      else begin
        let s = ((st.states.(b) - 1) mod q + q) mod q in
        st.states.(b) <- s;
        s
      end
    in
    (match Topology.consumer st.net (Topology.Bal_output { bal = b; port }) with
    | Topology.Bal_input { bal = next; port = _ } -> !items.(pick) <- (sign, next)
    | Topology.Net_output i ->
        out_nets.(i) <- out_nets.(i) + sign;
        !items.(pick) <- !items.(!live - 1);
        decr live);
    if !live > 0 && Array.length !items > 4 * !live then items := Array.sub !items 0 !live
  done;
  out_nets

let trace ?(seed = 0) net x =
  check_input net x;
  let st = make_stepper net in
  let rng = Random.State.make [| seed |] in
  (* In-flight tokens, as the balancer each one is waiting at. *)
  let inflight = ref [] in
  Array.iteri
    (fun wire count ->
      for _ = 1 to count do
        match Topology.consumer net (Topology.Net_input wire) with
        | Topology.Bal_input { bal; port = _ } -> inflight := bal :: !inflight
        | Topology.Net_output i -> st.out_counts.(i) <- st.out_counts.(i) + 1
      done)
    x;
  let tokens = ref (Array.of_list !inflight) in
  let live = ref (Array.length !tokens) in
  while !live > 0 do
    let pick = Random.State.int rng !live in
    let b = !tokens.(pick) in
    (match step st b with
    | Some next -> !tokens.(pick) <- next
    | None ->
        !tokens.(pick) <- !tokens.(!live - 1);
        decr live);
    if !live > 0 && Array.length !tokens > 4 * !live then tokens := Array.sub !tokens 0 !live
  done;
  st.out_counts

let token_run net entries =
  let st = make_stepper net in
  let t = Topology.output_width net in
  let next_value = Array.init t (fun i -> i) in
  let run_one wire =
    if wire < 0 || wire >= Topology.input_width net then
      invalid_arg "Eval.token_run: entry wire out of range";
    (* Walk balancer to balancer until a network output is reached. *)
    let rec walk src =
      match Topology.consumer net src with
      | Topology.Bal_input { bal; port = _ } ->
          let descriptor = Topology.balancer net bal in
          let s = st.states.(bal) in
          st.states.(bal) <- (s + 1) mod descriptor.Balancer.fan_out;
          walk (Topology.Bal_output { bal; port = s })
      | Topology.Net_output i ->
          let v = next_value.(i) in
          next_value.(i) <- v + t;
          (i, v)
    in
    walk (Topology.Net_input wire)
  in
  List.map run_one entries

let counter_values net entries = List.map snd (token_run net entries)
