(** Text rendering of balancing networks.

    [describe] works for every topology; [ascii] draws the classic
    straightened-wire diagram (cf. paper Figs. 11–13) and is available for
    networks built exclusively from [(2,2)]-balancers. *)

val describe : Topology.t -> string
(** [describe net] is a multi-line, layer-by-layer listing of balancers
    with their input sources and output consumers, suitable for any
    network (including irregular ones). *)

val ascii : Topology.t -> string
(** [ascii net] draws [net] on horizontal channels, one column per layer,
    with each [(2,2)]-balancer shown as a vertical connector between the
    two channels it joins (output port 0 continues on the channel of
    input port 0, so wires are straightened as in the paper's figures).
    @raise Invalid_argument if some balancer is not a [(2,2)]-balancer. *)

val svg : Topology.t -> string
(** [svg net] renders the straightened-wire diagram as a standalone SVG
    document: horizontal channel lines, one column per layer, each
    [(2,2)]-balancer drawn as a vertical connector with dot endpoints —
    the style of the paper's Figs. 11–13.
    @raise Invalid_argument if some balancer is not a
    [(2,2)]-balancer. *)

val dot : Topology.t -> string
(** [dot net] is a Graphviz digraph of [net]: one node per balancer
    (labelled with its shape), diamond nodes for network inputs and
    outputs, and one edge per wire labelled with the producing output
    port.  Render with [dot -Tsvg]. *)

val layer_profile : Topology.t -> (int * int) array array
(** [layer_profile net] lists, per layer, the [(fan_in, fan_out)] shapes
    of the layer's balancers in id order — handy for structural
    assertions in tests. *)
