type t = int array

let identity n =
  if n < 0 then invalid_arg "Permutation.identity: negative size";
  Array.init n (fun i -> i)

let of_array a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Permutation.of_array: value out of range";
      if seen.(v) then invalid_arg "Permutation.of_array: duplicate value";
      seen.(v) <- true)
    a;
  Array.copy a

let to_array = Array.copy

let size = Array.length

let apply_index pi i =
  if i < 0 || i >= Array.length pi then invalid_arg "Permutation.apply_index: out of range";
  pi.(i)

let inverse pi =
  let inv = Array.make (Array.length pi) 0 in
  Array.iteri (fun i v -> inv.(v) <- i) pi;
  inv

let compose a b =
  if Array.length a <> Array.length b then invalid_arg "Permutation.compose: size mismatch";
  Array.map (fun v -> a.(v)) b

let permute pi x =
  let n = Array.length pi in
  if Array.length x <> n then invalid_arg "Permutation.permute: length mismatch";
  if n = 0 then [||]
  else begin
    let y = Array.make n x.(0) in
    Array.iteri (fun i v -> y.(pi.(i)) <- v) x;
    y
  end

let is_identity pi =
  let ok = ref true in
  Array.iteri (fun i v -> if i <> v then ok := false) pi;
  !ok

let equal a b = a = b

let reverse n = of_array (Array.init n (fun i -> n - 1 - i))

let rotate n k =
  if n <= 0 then invalid_arg "Permutation.rotate: non-positive size";
  let k = ((k mod n) + n) mod n in
  Array.init n (fun i -> (i + k) mod n)

let riffle n =
  if n <= 0 || n mod 2 <> 0 then invalid_arg "Permutation.riffle: size must be positive and even";
  Array.init n (fun i -> if i < n / 2 then 2 * i else (2 * (i - (n / 2))) + 1)

let random ?(seed = 0) n =
  let st = Random.State.make [| seed |] in
  let a = identity n in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let pp ppf pi =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Format.pp_print_int)
    pi
