(** Unvalidated topology descriptions and their well-formedness lint.

    [Topology.t] is correct by construction: [Topology.create] raises on
    the first violated invariant.  That is the right interface for
    builders, but the wrong one for {e certification}: a serialized
    network arriving over [Codec], a decompiled runtime, or a seeded
    mutant should be checked {e exhaustively} — every violation
    reported, each with a pinned machine-readable code — rather than
    aborted at the first.

    [Raw.t] is the pre-validation description (exactly the inputs of
    [Topology.create]); {!check} runs the complete well-formedness pass
    over it and returns {e all} violations.  The pass covers: positive
    widths and arities ([NET001], [NET002], [NET008]), initial states in
    range ([NET003]), feed-row arity agreement ([NET004]), dangling
    references ([NET005]), duplicate consumers ([NET006]), unconsumed
    wires ([NET007]) and cycles in the balancer graph ([NET009]).  A
    description with no violations is accepted by [Topology.create]
    (and vice versa) — a tested equivalence. *)

type balancer = { fan_in : int; fan_out : int; init_state : int }

type t = {
  input_width : int;
  balancers : balancer array;
  feeds : Topology.source array array;
      (** [feeds.(b).(i)] feeds input port [i] of balancer [b]. *)
  outputs : Topology.source array;  (** [outputs.(i)] feeds output wire [i]. *)
}

type violation = { code : string; message : string }
(** A well-formedness violation.  [code] is one of the pinned [NETnnn]
    codes above and is stable across releases; [message] is the
    human-readable diagnosis. *)

val of_topology : Topology.t -> t
(** [of_topology net] is the raw description of a validated topology;
    [check (of_topology net) = []] always. *)

val check : t -> violation list
(** [check raw] is the full list of well-formedness violations of
    [raw], in deterministic order; [[]] iff [raw] describes a valid
    balancing network. *)

val validate : t -> (Topology.t, violation list) result
(** [validate raw] is [Ok (Topology.create ...)] when {!check} finds no
    violation, and [Error violations] otherwise.  Never raises. *)

val pp_violation : Format.formatter -> violation -> unit
(** Prints as [CODE: message]. *)
