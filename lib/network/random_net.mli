(** Random balancing-network generation, for fuzzing the framework.

    The generators below produce structurally valid topologies with
    non-trivial wiring, so that framework-level invariants (validation,
    evaluation, isomorphism, runtime agreement) can be property-tested
    far beyond the hand-built constructions. *)

val layered : ?seed:int -> layers:int -> int -> Topology.t
(** [layered ~layers width] is a regular network of [layers] layers on
    an even [width]: each layer pairs the wires by a fresh random perfect
    matching with [(2,2)]-balancers.
    @raise Invalid_argument if [width] is odd, [width < 2], or
    [layers < 0]. *)

val sparse : ?seed:int -> ?density:float -> layers:int -> int -> Topology.t
(** [sparse ~layers width] is like {!layered}, but each layer pairs only
    about [density] (default [0.5]) of the wires, leaving the rest to
    pass through — exercising wiring where balancer outputs connect
    across multiple layers.
    @raise Invalid_argument on invalid [width]/[layers] or if [density]
    is outside [\[0, 1\]]. *)

val irregular : ?seed:int -> layers:int -> int -> Topology.t
(** [irregular ~layers width] inserts, per layer, a random mix of
    [(2,2)]-, [(1,2)]- and [(2,1)]-balancers, so the wire count varies
    between layers (the generated network's output width may differ from
    [width]).  @raise Invalid_argument if [width < 2] or [layers < 0]. *)
