(** Permutations on wire indices (paper, Section 2.3).

    Following the paper, applying a permutation [pi] to a sequence [x]
    yields the sequence [y] with [x_i = y_{pi(i)}]: element [i] moves to
    position [pi(i)]. *)

type t
(** A permutation on [{0, ..., size - 1}]. *)

val identity : int -> t
(** [identity n] maps every element to itself.
    @raise Invalid_argument if [n < 0]. *)

val of_array : int array -> t
(** [of_array a] is the permutation mapping [i] to [a.(i)].
    @raise Invalid_argument if [a] is not a bijection on its index
    range. *)

val to_array : t -> int array
(** [to_array pi] is a copy of the underlying mapping array. *)

val size : t -> int
(** Number of elements permuted. *)

val apply_index : t -> int -> int
(** [apply_index pi i] is [pi(i)].
    @raise Invalid_argument if [i] is out of range. *)

val inverse : t -> t
(** [inverse pi] is the permutation [piR] with [piR (pi i) = i]. *)

val compose : t -> t -> t
(** [compose a b] maps [i] to [a (b i)] (apply [b] first).
    @raise Invalid_argument if sizes differ. *)

val permute : t -> 'a array -> 'a array
(** [permute pi x] is the array [y] with [y.(pi i) = x.(i)] — the paper's
    [pi(x)].  @raise Invalid_argument if lengths differ. *)

val is_identity : t -> bool
(** [is_identity pi] holds iff [pi] maps every element to itself. *)

val equal : t -> t -> bool
(** Pointwise equality. *)

val reverse : int -> t
(** [reverse n] maps [i] to [n - 1 - i]. *)

val rotate : int -> int -> t
(** [rotate n k] maps [i] to [(i + k) mod n] ([k] may be negative).
    @raise Invalid_argument if [n <= 0]. *)

val riffle : int -> t
(** [riffle n] (for even [n]) sends the first half to even positions and
    the second half to odd positions: [i -> 2i] for [i < n/2] and
    [i -> 2(i - n/2) + 1] otherwise — the wire shuffle relating a
    half-split to an even/odd split.
    @raise Invalid_argument if [n] is odd or non-positive. *)

val random : ?seed:int -> int -> t
(** [random n] is a uniformly random permutation (Fisher–Yates) drawn
    from a generator seeded with [seed] (default [0]). *)

val pp : Format.formatter -> t -> unit
(** Prints the mapping array. *)
