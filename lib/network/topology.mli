(** Immutable, validated balancing-network topologies (paper, Section
    1.1).

    A topology is an acyclic network of balancers in which every wire
    connects exactly one producer (a network input or a balancer output
    port) to exactly one consumer (a balancer input port or a network
    output).  Construction validates all structural invariants; a value
    of type [t] is therefore always a well-formed balancing network. *)

type source =
  | Net_input of int  (** network input wire [i] *)
  | Bal_output of { bal : int; port : int }
      (** output port [port] of balancer [bal] *)

type dest =
  | Bal_input of { bal : int; port : int }
      (** input port [port] of balancer [bal] *)
  | Net_output of int  (** network output wire [i] *)

type t

val create :
  input_width:int ->
  balancers:Balancer.t array ->
  feeds:source array array ->
  outputs:source array ->
  t
(** [create ~input_width ~balancers ~feeds ~outputs] builds a topology in
    which balancer [b]'s input port [i] is fed by [feeds.(b).(i)] and
    network output wire [i] is fed by [outputs.(i)].

    Validation enforces: port arities match the balancer descriptors;
    every network input and every balancer output port is consumed exactly
    once; all references are in range; and the balancer dependency graph
    is acyclic.
    @raise Invalid_argument describing the first violated invariant. *)

val input_width : t -> int
(** Number of network input wires [w]. *)

val output_width : t -> int
(** Number of network output wires [t]. *)

val size : t -> int
(** Number of balancers. *)

val balancer : t -> int -> Balancer.t
(** [balancer net b] is the descriptor of balancer [b].
    @raise Invalid_argument if [b] is out of range. *)

val feeds : t -> int -> source array
(** [feeds net b] is a copy of the sources feeding balancer [b]'s input
    ports. *)

val outputs : t -> source array
(** [outputs net] is a copy of the sources feeding the network output
    wires. *)

val consumer : t -> source -> dest
(** [consumer net s] is the unique consumer of the wire produced at [s].
    @raise Invalid_argument if [s] does not exist in [net]. *)

val balancer_depth : t -> int -> int
(** [balancer_depth net b] is the depth of balancer [b]: the maximum
    number of balancers (including [b]) on any path from a network input
    to an output wire of [b] (paper, Section 2.2). *)

val depth : t -> int
(** [depth net] is the maximum balancer depth; [0] for a balancer-free
    network (bare wires). *)

val layers : t -> int array array
(** [layers net] groups balancer ids by depth: [ (layers net).(i) ] holds
    the balancers of depth [i + 1], each sorted by id.  The concatenation
    covers every balancer exactly once. *)

val is_regular : t -> bool
(** [is_regular net] holds iff every balancer is regular (paper: regular
    network). *)

val topo_order : t -> int array
(** Balancer ids in a topological order of the dependency graph (inputs
    before consumers); stable across calls. *)

val cascade : t -> t -> t
(** [cascade a b] connects the output wires of [a] to the input wires of
    [b] in order, yielding a network computing [b] after [a].
    @raise Invalid_argument if [output_width a <> input_width b]. *)

val parallel : t -> t -> t
(** [parallel a b] places [a] above [b] with no shared wires: input wires
    of the result are those of [a] followed by those of [b], and likewise
    for outputs. *)

val identity : int -> t
(** [identity w] is the balancer-free network of [w] parallel wires.
    @raise Invalid_argument if [w <= 0]. *)

val permute_inputs : Permutation.t -> t -> t
(** [permute_inputs pi net] relabels input wires: input wire [pi(i)] of
    the result feeds whatever input wire [i] of [net] fed (so a token
    entering the result on wire [pi(i)] behaves like a token entering
    [net] on wire [i]).
    @raise Invalid_argument if sizes mismatch. *)

val permute_outputs : Permutation.t -> t -> t
(** [permute_outputs pi net] relabels output wires: output wire [pi(i)]
    of the result carries what output wire [i] of [net] carried.
    @raise Invalid_argument if sizes mismatch. *)

val with_init_states : (int -> Balancer.t -> int) -> t -> t
(** [with_init_states f net] replaces the initial state of every
    balancer: balancer [b] with descriptor [d] gets initial state
    [f b d], which must lie in [\[0, d.fan_out)].  Wiring is unchanged.
    Used for randomized-initialization experiments (paper, Section 7).
    @raise Invalid_argument if some new state is out of range. *)

val randomize_states : seed:int -> t -> t
(** [randomize_states ~seed net] draws every balancer's initial state
    uniformly from its output range — the randomized-balancer variant
    discussed in Section 7 (cf. Herlihy–Tirthapura). *)

val equal : t -> t -> bool
(** Structural equality: identical balancer arrays and wiring. *)

val pp : Format.formatter -> t -> unit
(** One-line summary [w -> t, size n, depth d]. *)
