(** Imperative construction of topologies by threading wires.

    A builder hands out wires (network inputs or balancer outputs); each
    wire must be consumed exactly once, either as an input of a later
    balancer or as a network output.  Recursive constructions such as
    [C(w, t)] become functions from wire arrays to wire arrays. *)

type t
(** Builder state accumulating balancers and wiring. *)

type wire
(** A dangling wire awaiting its unique consumer. *)

val create : input_width:int -> t * wire array
(** [create ~input_width] starts a network with [input_width] fresh input
    wires.  @raise Invalid_argument if [input_width <= 0]. *)

val add_balancer : t -> ?init_state:int -> fan_out:int -> wire array -> wire array
(** [add_balancer b ~fan_out ins] appends a [(Array.length ins, fan_out)]-
    balancer consuming the wires [ins] (port [i] takes [ins.(i)]) and
    returns its [fan_out] fresh output wires in port order.
    @raise Invalid_argument if a wire was already consumed, belongs to a
    different builder, or the balancer shape is invalid. *)

val balancer2 : t -> ?init_state:int -> wire -> wire -> wire * wire
(** [balancer2 b top bottom] adds a [(2,2)]-balancer; convenience for the
    dominant case.  Returns [(top_out, bottom_out)]. *)

val finish : t -> wire array -> Topology.t
(** [finish b outs] consumes the wires [outs] as the network output wires
    in order and returns the validated topology.
    @raise Invalid_argument if any wire is consumed twice or some wire of
    the builder is left dangling (the topology validator reports it). *)

val build : input_width:int -> (t -> wire array -> wire array) -> Topology.t
(** [build ~input_width f] runs [f] on fresh input wires and finishes with
    the wires [f] returns: the common construct-one-network pattern. *)
