type t = {
  input_width : int;
  mutable balancers : Balancer.t list; (* reversed *)
  mutable feeds : Topology.source array list; (* reversed *)
  mutable count : int;
}

(* A wire remembers its builder by physical identity; no global counter
   is needed to detect cross-builder wire use, so construction stays
   free of shared mutable state. *)
type wire = { src : Topology.source; owner : t; mutable consumed : bool }

let create ~input_width =
  if input_width <= 0 then invalid_arg "Builder.create: non-positive input width";
  let b = { input_width; balancers = []; feeds = []; count = 0 } in
  let ins =
    Array.init input_width (fun i -> { src = Topology.Net_input i; owner = b; consumed = false })
  in
  (b, ins)

let consume b w =
  if w.owner != b then invalid_arg "Builder: wire belongs to a different builder";
  if w.consumed then invalid_arg "Builder: wire consumed twice";
  w.consumed <- true;
  w.src

let add_balancer b ?init_state ~fan_out ins =
  let fan_in = Array.length ins in
  let descriptor = Balancer.make ?init_state ~fan_in ~fan_out () in
  let srcs = Array.map (consume b) ins in
  let bal = b.count in
  b.balancers <- descriptor :: b.balancers;
  b.feeds <- srcs :: b.feeds;
  b.count <- bal + 1;
  Array.init fan_out (fun port ->
      { src = Topology.Bal_output { bal; port }; owner = b; consumed = false })

let balancer2 b ?init_state top bottom =
  match add_balancer b ?init_state ~fan_out:2 [| top; bottom |] with
  | [| o0; o1 |] -> (o0, o1)
  | _ -> assert false

let finish b outs =
  let outputs = Array.map (consume b) outs in
  Topology.create ~input_width:b.input_width
    ~balancers:(Array.of_list (List.rev b.balancers))
    ~feeds:(Array.of_list (List.rev b.feeds))
    ~outputs

let build ~input_width f =
  let b, ins = create ~input_width in
  finish b (f b ins)
