let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let check_layered name ~width ~layers =
  if width < 2 || width mod 2 <> 0 then invalid_arg (name ^ ": width must be even and >= 2");
  if layers < 0 then invalid_arg (name ^ ": negative layer count")

let layered ?(seed = 0) ~layers width =
  check_layered "Random_net.layered" ~width ~layers;
  let rng = Random.State.make [| seed; width; layers |] in
  Builder.build ~input_width:width (fun b ins ->
      let wires = ref ins in
      for _ = 1 to layers do
        let order = Array.init width (fun i -> i) in
        shuffle rng order;
        let next = Array.copy !wires in
        for k = 0 to (width / 2) - 1 do
          let i = order.(2 * k) and j = order.((2 * k) + 1) in
          let top, bottom = Builder.balancer2 b !wires.(i) !wires.(j) in
          next.(i) <- top;
          next.(j) <- bottom
        done;
        wires := next
      done;
      !wires)

let sparse ?(seed = 0) ?(density = 0.5) ~layers width =
  check_layered "Random_net.sparse" ~width ~layers;
  if density < 0. || density > 1. then invalid_arg "Random_net.sparse: density outside [0, 1]";
  let rng = Random.State.make [| seed; width; layers; 77 |] in
  Builder.build ~input_width:width (fun b ins ->
      let wires = ref ins in
      for _ = 1 to layers do
        let order = Array.init width (fun i -> i) in
        shuffle rng order;
        let pairs = int_of_float (density *. float_of_int (width / 2)) in
        let next = Array.copy !wires in
        for k = 0 to pairs - 1 do
          let i = order.(2 * k) and j = order.((2 * k) + 1) in
          let top, bottom = Builder.balancer2 b !wires.(i) !wires.(j) in
          next.(i) <- top;
          next.(j) <- bottom
        done;
        wires := next
      done;
      !wires)

let irregular ?(seed = 0) ~layers width =
  if width < 2 then invalid_arg "Random_net.irregular: width must be >= 2";
  if layers < 0 then invalid_arg "Random_net.irregular: negative layer count";
  let rng = Random.State.make [| seed; width; layers; 131 |] in
  Builder.build ~input_width:width (fun b ins ->
      let wires = ref (Array.to_list ins) in
      for _ = 1 to layers do
        let arr = Array.of_list !wires in
        shuffle rng arr;
        let rec consume acc = function
          | [] -> List.rev acc
          | [ w ] ->
              (* A lone wire: split it with a (1,2)-balancer or pass. *)
              if Random.State.bool rng then
                let outs = Builder.add_balancer b ~fan_out:2 [| w |] in
                List.rev (outs.(1) :: outs.(0) :: acc)
              else List.rev (w :: acc)
          | w1 :: w2 :: rest -> (
              match Random.State.int rng 4 with
              | 0 ->
                  (* (2,2)-balancer *)
                  let top, bottom = Builder.balancer2 b w1 w2 in
                  consume (bottom :: top :: acc) rest
              | 1 ->
                  (* (2,1)-balancer: fan-in *)
                  let outs = Builder.add_balancer b ~fan_out:1 [| w1; w2 |] in
                  consume (outs.(0) :: acc) rest
              | 2 ->
                  (* (1,2)-balancer on the first wire *)
                  let outs = Builder.add_balancer b ~fan_out:2 [| w1 |] in
                  consume (outs.(1) :: outs.(0) :: acc) (w2 :: rest)
              | _ ->
                  (* pass both through *)
                  consume (w2 :: w1 :: acc) rest)
        in
        wires := consume [] (Array.to_list arr)
      done;
      Array.of_list !wires)
