(** Isomorphism of balancing networks (paper, Section 2.3).

    Two networks are isomorphic when a bijection between their balancers
    preserves balancer shapes and, for every balancer output port [k]
    connected to some balancer [bj], sends that connection to the *same
    port [k]* of the corresponding balancer, landing on (any input port
    of) the corresponding target balancer.  This is finer than graph
    isomorphism: output-port order matters, input-port order does not. *)

val check :
  Topology.t ->
  Topology.t ->
  mapping:int array ->
  (Permutation.t * Permutation.t, string) result
(** [check a b ~mapping] verifies that [mapping] (balancer [i] of [a]
    corresponds to balancer [mapping.(i)] of [b]) is an isomorphism, and
    derives input/output wire correspondences [(pi_in, pi_out)] such that
    by Lemma 2.7 quiescent runs satisfy
    [quiescent b (permute pi_in x) = permute pi_out (quiescent a x)].
    Wire pairings not forced by the structure (parallel wires into the
    same balancer) are resolved in ascending index order.
    Returns [Error reason] when [mapping] is not an isomorphism. *)

val find : ?budget:int -> Topology.t -> Topology.t -> int array option
(** [find a b] searches for a balancer mapping witnessing [a ≅ b] by
    backtracking in topological order, pruning with balancer shape,
    depth, and predecessor-port consistency.  Returns [None] if no
    isomorphism exists or the node budget (default [10_000_000] search
    steps) is exhausted.  Intended for the moderately sized, highly
    constrained networks of this library (e.g. butterflies up to a few
    hundred balancers). *)

val equivalent_under :
  ?trials:int ->
  ?seed:int ->
  ?max_tokens:int ->
  pi_in:Permutation.t ->
  pi_out:Permutation.t ->
  Topology.t ->
  Topology.t ->
  bool
(** [equivalent_under ~pi_in ~pi_out a b] empirically validates the
    Lemma 2.7 relation on [trials] (default 64) random input loads with
    per-wire counts in [\[0, max_tokens\]] (default 32). *)
