(** [(p, q)]-balancers: the asynchronous switches balancing networks are
    built from (paper, Section 1.1 and 2.2).

    A [(p, q)]-balancer accepts tokens on [p] input wires and forwards the
    [i]-th token it processes to output wire [(s0 + i) mod q], where [s0]
    is its initial state.  The descriptor here is purely combinatorial;
    the concurrent implementation lives in [Cn_runtime]. *)

type t = private { fan_in : int; fan_out : int; init_state : int }
(** Descriptor of a [(fan_in, fan_out)]-balancer whose first processed
    token leaves on wire [init_state]. *)

val make : ?init_state:int -> fan_in:int -> fan_out:int -> unit -> t
(** [make ~fan_in ~fan_out ()] is a [(fan_in, fan_out)]-balancer.
    [init_state] defaults to [0].
    @raise Invalid_argument if [fan_in <= 0], [fan_out <= 0], or
    [init_state] is outside [\[0, fan_out)]. *)

val is_regular : t -> bool
(** [is_regular b] holds iff [b.fan_in = b.fan_out] (paper: regular
    balancer). *)

val wire_of_kth_token : t -> int -> int
(** [wire_of_kth_token b k] is the output wire of the [k]-th token
    (0-based) processed by [b] starting from its initial state:
    [(init_state + k) mod fan_out].
    @raise Invalid_argument if [k < 0]. *)

val output_counts : t -> tokens:int -> Cn_sequence.Sequence.t
(** [output_counts b ~tokens] is the output sequence of [b] in a
    quiescent state after processing [tokens] tokens from its initial
    state.  The result always satisfies a rotated step property; it is a
    step sequence when [init_state = 0].
    @raise Invalid_argument if [tokens < 0]. *)

val state_after : t -> tokens:int -> int
(** [state_after b ~tokens] is the balancer state after [tokens]
    transitions: [(init_state + tokens) mod fan_out].
    @raise Invalid_argument if [tokens < 0]. *)

val net_output_counts : t -> net:int -> Cn_sequence.Sequence.t
(** [net_output_counts b ~net] is the per-wire *net* token flow (tokens
    minus antitokens) out of [b] in a quiescent state whose inputs
    netted to [net] tokens, which may be negative.  An antitoken undoes
    a token: it decrements the balancer state and exits on the wire the
    state now indexes, so any interleaving of [k] tokens and [j]
    antitokens nets to the same flow as [|k - j|] (anti)tokens alone
    (Aiello et al., “Supporting increment and decrement operations in
    balancing networks”). *)

val state_after_net : t -> net:int -> int
(** [state_after_net b ~net] is the balancer state after a quiescent
    mixed run netting [net]: [(init_state + net) mod fan_out],
    normalized into [\[0, fan_out)]. *)

val equal : t -> t -> bool
(** Structural equality of descriptors. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(p,q)@s] ([@s] omitted when the initial state is 0). *)
