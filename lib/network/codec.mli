(** Textual serialization of topologies.

    A small line-oriented format so networks can be saved, diffed, and
    piped between tools:

    {v
    counting-network v1
    inputs 4
    balancer 0 2 2 0 : in0 in2
    balancer 1 2 4 0 : b0.0 b0.1
    outputs : b1.0 b1.1 b1.2 b1.3 in1 in3
    v}

    Each [balancer] line gives id, fan-in, fan-out, initial state, and
    the source of each input port; the [outputs] line gives the source
    of each network output wire.  Balancer ids must be dense and in
    order.  Decoding runs the full {!Raw.check} well-formedness pass, so
    a malformed description (dangling or duplicated wires, arity
    violations, cycles) is rejected with the complete list of pinned
    [NETnnn] lint diagnostics rather than with only the first failure,
    and a decoded value satisfies every structural invariant. *)

val to_string : Topology.t -> string
(** [to_string net] serializes [net]; [of_string (to_string net)]
    reconstructs an equal topology. *)

val parse_raw : string -> (Raw.t, string) result
(** [parse_raw s] parses the syntax only — tokens, integers, dense
    balancer ids — into an unvalidated {!Raw.t}.  Errors carry a line
    number and reason.  No structural invariant is checked. *)

val of_string : string -> (Topology.t, string) result
(** [of_string s] is {!parse_raw} followed by {!Raw.validate}.  Syntax
    errors carry a line number; structural violations are reported as
    ["lint: CODE: reason; ..."] listing every {!Raw.violation}. *)
