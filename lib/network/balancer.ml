module Sequence = Cn_sequence.Sequence

type t = { fan_in : int; fan_out : int; init_state : int }

let make ?(init_state = 0) ~fan_in ~fan_out () =
  if fan_in <= 0 then invalid_arg "Balancer.make: fan_in <= 0";
  if fan_out <= 0 then invalid_arg "Balancer.make: fan_out <= 0";
  if init_state < 0 || init_state >= fan_out then
    invalid_arg "Balancer.make: init_state out of range";
  { fan_in; fan_out; init_state }

let is_regular b = b.fan_in = b.fan_out

let wire_of_kth_token b k =
  if k < 0 then invalid_arg "Balancer.wire_of_kth_token: negative index";
  (b.init_state + k) mod b.fan_out

let output_counts b ~tokens =
  if tokens < 0 then invalid_arg "Balancer.output_counts: negative token count";
  let q = b.fan_out in
  (* Wire [i] receives tokens numbered [k] with [(init_state + k) mod q = i],
     i.e. [k ≡ i - init_state (mod q)], [0 <= k < tokens].  With
     [d = (i - init_state) mod q] (non-negative), that count is
     [⌈(tokens - d) / q⌉], which is 0 whenever [d >= tokens]. *)
  Array.init q (fun i ->
      let d = ((i - b.init_state) mod q + q) mod q in
      max 0 (Sequence.ceil_div (tokens - d) q))

let state_after b ~tokens =
  if tokens < 0 then invalid_arg "Balancer.state_after: negative token count";
  (b.init_state + tokens) mod b.fan_out

let net_output_counts b ~net =
  if net >= 0 then output_counts b ~tokens:net
  else begin
    let q = b.fan_out in
    (* The i-th antitoken (1-based) exits on wire (init_state - i) mod q,
       each contributing -1 to its wire's net flow. *)
    Array.init q (fun wire ->
        let d = ((b.init_state - wire) mod q + q) mod q in
        (* Antitoken indices hitting [wire] are i ≡ d (mod q), i >= 1;
           count those with i <= -net. *)
        let d = if d = 0 then q else d in
        let hits = if -net >= d then ((-net - d) / q) + 1 else 0 in
        -hits)
  end

let state_after_net b ~net = (((b.init_state + net) mod b.fan_out) + b.fan_out) mod b.fan_out

let equal a b = a = b

let pp ppf b =
  if b.init_state = 0 then Format.fprintf ppf "(%d,%d)" b.fan_in b.fan_out
  else Format.fprintf ppf "(%d,%d)@@%d" b.fan_in b.fan_out b.init_state
