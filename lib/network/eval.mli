(** Quiescent-state evaluation of balancing networks (paper, Section 2.2).

    Two evaluators are provided: a closed-form one that pushes token
    *counts* through the network in topological order, and a token-level
    stepper that moves individual tokens under an arbitrary interleaving.
    In any quiescent state both agree — balancer outputs depend only on
    the number of tokens that crossed them — which is itself a tested
    property. *)

val quiescent : Topology.t -> Cn_sequence.Sequence.t -> Cn_sequence.Sequence.t
(** [quiescent net x] is the output sequence of [net] in the quiescent
    state reached after [x.(i)] tokens have entered on each input wire
    [i].  @raise Invalid_argument if [x] has the wrong length or a
    negative entry. *)

val quiescent_full :
  Topology.t -> Cn_sequence.Sequence.t -> Cn_sequence.Sequence.t * int array
(** [quiescent_full net x] additionally returns the final state of every
    balancer (by balancer id). *)

val trace :
  ?seed:int -> Topology.t -> Cn_sequence.Sequence.t -> Cn_sequence.Sequence.t
(** [trace ~seed net x] evaluates by moving one token at a time under a
    pseudo-random interleaving drawn from [seed] (default 0): all tokens
    are injected, then repeatedly a random in-flight token crosses its
    current balancer.  The quiescent result equals [quiescent net x]
    regardless of [seed]. *)

val quiescent_net : Topology.t -> Cn_sequence.Sequence.t -> Cn_sequence.Sequence.t
(** [quiescent_net net x] is the *net* output flow (tokens minus
    antitokens per wire) after a quiescent mixed execution whose net
    input flow was [x] — entries may be negative.  By the
    token/antitoken cancellation theorem (Aiello et al.; paper,
    Section 1.4.2) the result depends only on the net input counts, and
    for a counting network it satisfies the step property whenever the
    per-wire nets would in an all-token run (validated against
    {!trace_signed} in the test suite). *)

val trace_signed :
  ?seed:int ->
  Topology.t ->
  tokens:Cn_sequence.Sequence.t ->
  antitokens:Cn_sequence.Sequence.t ->
  Cn_sequence.Sequence.t
(** [trace_signed net ~tokens ~antitokens] runs a token-level execution
    interleaving [tokens.(i)] tokens and [antitokens.(i)] antitokens on
    each input wire [i] under a pseudo-random schedule, and returns the
    net flow per output wire.  Agrees with
    [quiescent_net net (tokens - antitokens)] for every seed. *)

val token_run : Topology.t -> int list -> (int * int) list
(** [token_run net entries] shepherds tokens *sequentially* — token [j]
    fully traverses the network before token [j+1] enters — where token
    [j] enters on input wire [List.nth entries j].  Returns, in entry
    order, [(exit_wire, counter_value)] for each token, with counter
    values assigned by the standard output-wire scheme: wire [i] hands
    out [i, i + t, i + 2t, ...] (paper, Section 1.1 and Fig. 1).
    @raise Invalid_argument on an out-of-range entry wire. *)

val counter_values : Topology.t -> int list -> int list
(** [counter_values net entries = List.map snd (token_run net entries)]. *)
