type balancer = { fan_in : int; fan_out : int; init_state : int }

type t = {
  input_width : int;
  balancers : balancer array;
  feeds : Topology.source array array;
  outputs : Topology.source array;
}

type violation = { code : string; message : string }

let violation code fmt = Format.kasprintf (fun message -> { code; message }) fmt
let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.code v.message

let of_topology net =
  {
    input_width = Topology.input_width net;
    balancers =
      Array.init (Topology.size net) (fun b ->
          let d = Topology.balancer net b in
          {
            fan_in = d.Balancer.fan_in;
            fan_out = d.Balancer.fan_out;
            init_state = d.Balancer.init_state;
          });
    feeds = Array.init (Topology.size net) (Topology.feeds net);
    outputs = Topology.outputs net;
  }

let source_str = function
  | Topology.Net_input i -> Printf.sprintf "network input %d" i
  | Topology.Bal_output { bal; port } -> Printf.sprintf "output port %d of balancer %d" port bal

(* The pass mirrors [Topology.create]'s invariants but keeps going after
   a violation, so a mutant with several defects reports all of them.
   Checks that would crash on malformed earlier stages (consumer
   counting over out-of-range ports, cycle detection) skip the entries
   already reported as violations instead of bailing out entirely. *)
let check raw =
  let n = Array.length raw.balancers in
  let out = ref [] in
  let emit v = out := v :: !out in
  if raw.input_width <= 0 then
    emit (violation "NET001" "input width must be positive (got %d)" raw.input_width);
  if Array.length raw.outputs = 0 then emit (violation "NET008" "the network has no output wires");
  Array.iteri
    (fun b { fan_in; fan_out; init_state } ->
      if fan_in <= 0 || fan_out <= 0 then
        emit (violation "NET002" "balancer %d has invalid arity (%d,%d)" b fan_in fan_out)
      else if init_state < 0 || init_state >= fan_out then
        emit
          (violation "NET003" "balancer %d has initial state %d outside [0, %d)" b init_state
             fan_out))
    raw.balancers;
  if Array.length raw.feeds <> n then
    emit
      (violation "NET004" "%d balancers but %d feed rows" n (Array.length raw.feeds))
  else
    Array.iteri
      (fun b row ->
        let p = raw.balancers.(b).fan_in in
        if p > 0 && Array.length row <> p then
          emit
            (violation "NET004" "balancer %d has fan-in %d but %d feeds" b p (Array.length row)))
      raw.feeds;
  (* A source reference is sound when it points at an existing network
     input or at an in-range port of a balancer with valid arity. *)
  let source_ok s =
    match s with
    | Topology.Net_input i -> i >= 0 && i < raw.input_width
    | Topology.Bal_output { bal; port } ->
        bal >= 0 && bal < n && port >= 0
        && raw.balancers.(bal).fan_out > 0
        && port < raw.balancers.(bal).fan_out
  in
  let check_ref what s =
    if not (source_ok s) then emit (violation "NET005" "%s refers to missing %s" what (source_str s))
  in
  let each_feed f =
    if Array.length raw.feeds = n then
      Array.iteri (fun b row -> Array.iteri (fun i s -> f (Printf.sprintf "feed %d of balancer %d" i b) s) row) raw.feeds
  in
  each_feed check_ref;
  Array.iteri (fun i s -> check_ref (Printf.sprintf "network output %d" i) s) raw.outputs;
  (* Consumption counts over the sound references only. *)
  let net_uses = Array.make (max raw.input_width 0) 0 in
  let bal_uses = Array.init n (fun b -> Array.make (max raw.balancers.(b).fan_out 0) 0) in
  let consume s =
    if source_ok s then
      match s with
      | Topology.Net_input i -> net_uses.(i) <- net_uses.(i) + 1
      | Topology.Bal_output { bal; port } -> bal_uses.(bal).(port) <- bal_uses.(bal).(port) + 1
  in
  each_feed (fun _ s -> consume s);
  Array.iter consume raw.outputs;
  Array.iteri
    (fun i c ->
      if c = 0 then emit (violation "NET007" "network input %d is never consumed" i)
      else if c > 1 then emit (violation "NET006" "network input %d consumed %d times" i c))
    net_uses;
  Array.iteri
    (fun b row ->
      Array.iteri
        (fun p c ->
          if c = 0 then emit (violation "NET007" "output port %d of balancer %d is never consumed" p b)
          else if c > 1 then
            emit (violation "NET006" "output port %d of balancer %d consumed %d times" p b c))
        row)
    bal_uses;
  (* Cycle detection: Kahn's algorithm over the balancer edges induced
     by sound feed references.  Any balancer left unplaced sits on (or
     downstream of) a cycle. *)
  if Array.length raw.feeds = n then begin
    let indeg = Array.make n 0 in
    let succs = Array.make n [] in
    Array.iteri
      (fun b row ->
        Array.iter
          (fun s ->
            if source_ok s then
              match s with
              | Topology.Bal_output { bal; _ } ->
                  indeg.(b) <- indeg.(b) + 1;
                  succs.(bal) <- b :: succs.(bal)
              | Topology.Net_input _ -> ())
          row)
      raw.feeds;
    let queue = Queue.create () in
    Array.iteri (fun b d -> if d = 0 then Queue.add b queue) indeg;
    let placed = ref 0 in
    while not (Queue.is_empty queue) do
      let b = Queue.pop queue in
      incr placed;
      List.iter
        (fun b' ->
          indeg.(b') <- indeg.(b') - 1;
          if indeg.(b') = 0 then Queue.add b' queue)
        succs.(b)
    done;
    if !placed <> n then
      emit (violation "NET009" "the balancer graph contains a cycle (%d balancers involved)" (n - !placed))
  end;
  List.rev !out

let validate raw =
  match check raw with
  | [] ->
      Ok
        (Topology.create ~input_width:raw.input_width
           ~balancers:
             (Array.map
                (fun { fan_in; fan_out; init_state } ->
                  Balancer.make ~init_state ~fan_in ~fan_out ())
                raw.balancers)
           ~feeds:raw.feeds ~outputs:raw.outputs)
  | violations -> Error violations
