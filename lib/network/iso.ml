let ( let* ) r f = Result.bind r f

let check a b ~mapping =
  let na = Topology.size a and nb = Topology.size b in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if Array.length mapping <> na then err "mapping has %d entries for %d balancers" (Array.length mapping) na
  else if na <> nb then err "different balancer counts (%d vs %d)" na nb
  else if Topology.input_width a <> Topology.input_width b then
    err "different input widths (%d vs %d)" (Topology.input_width a) (Topology.input_width b)
  else if Topology.output_width a <> Topology.output_width b then
    err "different output widths (%d vs %d)" (Topology.output_width a) (Topology.output_width b)
  else begin
    (* [mapping] must be a bijection. *)
    let seen = Array.make na false in
    let bijective =
      Array.for_all
        (fun v ->
          if v < 0 || v >= na || seen.(v) then false
          else begin
            seen.(v) <- true;
            true
          end)
        mapping
    in
    if not bijective then err "mapping is not a bijection"
    else begin
      (* Condition i: corresponding balancers have the same shape. *)
      let rec shapes i =
        if i >= na then Ok ()
        else
          let ba = Topology.balancer a i and bb = Topology.balancer b mapping.(i) in
          if Balancer.equal ba bb then shapes (i + 1)
          else err "balancer %d has shape %a but its image %d has %a" i Balancer.pp ba mapping.(i) Balancer.pp bb
      in
      let* () = shapes 0 in
      (* Condition ii, checked per output port, in both directions (the
         bijection makes the reverse direction a consequence for
         balancer-to-balancer edges, but bare checking of both also pins
         balancer-to-network-output edges). *)
      let target net bal port =
        match Topology.consumer net (Topology.Bal_output { bal; port }) with
        | Topology.Bal_input { bal = j; port = _ } -> `Bal j
        | Topology.Net_output o -> `Out o
      in
      let rec ports i =
        if i >= na then Ok ()
        else
          let q = (Topology.balancer a i).Balancer.fan_out in
          let rec port k =
            if k >= q then Ok ()
            else
              match (target a i k, target b mapping.(i) k) with
              | `Bal j, `Bal j' when mapping.(j) = j' -> port (k + 1)
              | `Out _, `Out _ -> port (k + 1)
              | `Bal j, `Bal j' ->
                  err "port %d of balancer %d feeds balancer %d, image feeds %d (expected %d)" k i j j' mapping.(j)
              | `Bal _, `Out _ | `Out _, `Bal _ ->
                  err "port %d of balancer %d disagrees on feeding a network output" k i
          in
          match port 0 with Ok () -> ports (i + 1) | Error _ as e -> e
      in
      let* () = ports 0 in
      (* Derive pi_in: group each network's input wires by the balancer
         they enter (or by direct network output) and pair groups in
         ascending order.  Group sizes must agree. *)
      let input_groups net =
        let w = Topology.input_width net in
        let tbl = Hashtbl.create 16 in
        for i = 0 to w - 1 do
          let key =
            match Topology.consumer net (Topology.Net_input i) with
            | Topology.Bal_input { bal; port = _ } -> `Bal bal
            | Topology.Net_output o -> `Direct o
          in
          let prev = try Hashtbl.find tbl key with Not_found -> [] in
          Hashtbl.replace tbl key (i :: prev)
        done;
        tbl
      in
      let ga = input_groups a and gb = input_groups b in
      let w = Topology.input_width a in
      let pi_in = Array.make w (-1) in
      let direct_pairs = ref [] in
      let rec assign_groups keys =
        match keys with
        | [] -> Ok ()
        | key :: rest -> (
            let wires_a = List.rev (Hashtbl.find ga key) in
            let key_b =
              match key with
              | `Bal bal -> `Bal mapping.(bal)
              | `Direct _ -> key
            in
            let wires_b =
              match key_b with
              | `Bal _ as k -> ( try List.rev (Hashtbl.find gb k) with Not_found -> [])
              | `Direct o -> (
                  (* Direct wires of [b] are matched globally by order, not
                     by output index; collect them all. *)
                  ignore o;
                  [])
            in
            match key with
            | `Direct o ->
                (* Defer: pair all direct input wires of [a] and [b] in
                   ascending order after balancer-bound ones. *)
                List.iter (fun ia -> direct_pairs := (ia, o) :: !direct_pairs) wires_a;
                assign_groups rest
            | `Bal _ ->
                if List.length wires_a <> List.length wires_b then
                  err "balancer %s receives different numbers of network inputs"
                    (match key with `Bal i -> string_of_int i | `Direct _ -> "?")
                else begin
                  List.iter2 (fun ia ib -> pi_in.(ia) <- ib) wires_a wires_b;
                  assign_groups rest
                end)
      in
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) ga [] in
      let keys =
        List.sort
          (fun x y ->
            match (x, y) with
            | `Bal i, `Bal j -> compare i j
            | `Direct i, `Direct j -> compare i j
            | `Bal _, `Direct _ -> -1
            | `Direct _, `Bal _ -> 1)
          keys
      in
      let* () = assign_groups keys in
      (* Direct (balancer-free) input wires: pair ascending. *)
      let directs_b =
        let acc = ref [] in
        for i = Topology.input_width b - 1 downto 0 do
          match Topology.consumer b (Topology.Net_input i) with
          | Topology.Net_output o -> acc := (i, o) :: !acc
          | Topology.Bal_input _ -> ()
        done;
        !acc
      in
      let directs_a = List.sort compare (List.map (fun (ia, o) -> (ia, o)) !direct_pairs) in
      let* direct_out_pairs =
        if List.length directs_a <> List.length directs_b then
          err "different numbers of balancer-free input wires"
        else
          Ok
            (List.map2
               (fun (ia, oa) (ib, ob) ->
                 pi_in.(ia) <- ib;
                 (oa, ob))
               directs_a directs_b)
      in
      if Array.exists (fun v -> v < 0) pi_in then err "internal: incomplete input correspondence"
      else begin
        (* Derive pi_out from balancer ports feeding network outputs, plus
           the bare-wire pairs. *)
        let t = Topology.output_width a in
        let pi_out = Array.make t (-1) in
        List.iter (fun (oa, ob) -> pi_out.(oa) <- ob) direct_out_pairs;
        let rec outs i =
          if i >= na then Ok ()
          else begin
            let q = (Topology.balancer a i).Balancer.fan_out in
            for k = 0 to q - 1 do
              match
                ( Topology.consumer a (Topology.Bal_output { bal = i; port = k }),
                  Topology.consumer b (Topology.Bal_output { bal = mapping.(i); port = k }) )
              with
              | Topology.Net_output oa, Topology.Net_output ob -> pi_out.(oa) <- ob
              | _ -> ()
            done;
            outs (i + 1)
          end
        in
        let* () = outs 0 in
        if Array.exists (fun v -> v < 0) pi_out then err "internal: incomplete output correspondence"
        else Ok (Permutation.of_array pi_in, Permutation.of_array pi_out)
      end
    end
  end

exception Budget_exhausted

let find ?(budget = 10_000_000) a b =
  let na = Topology.size a in
  if
    na <> Topology.size b
    || Topology.input_width a <> Topology.input_width b
    || Topology.output_width a <> Topology.output_width b
    || Topology.depth a <> Topology.depth b
  then None
  else begin
    (* Static signature of a balancer: shape, depth, how many network
       inputs feed it, and which output ports feed network outputs.  All
       are isomorphism invariants. *)
    let signature net i =
      let descriptor = Topology.balancer net i in
      let net_ins =
        Array.fold_left
          (fun acc s -> match s with Topology.Net_input _ -> acc + 1 | Topology.Bal_output _ -> acc)
          0 (Topology.feeds net i)
      in
      let out_ports =
        Array.init descriptor.Balancer.fan_out (fun port ->
            match Topology.consumer net (Topology.Bal_output { bal = i; port }) with
            | Topology.Net_output _ -> true
            | Topology.Bal_input _ -> false)
      in
      (descriptor, Topology.balancer_depth net i, net_ins, out_ports)
    in
    let sig_a = Array.init na (signature a) and sig_b = Array.init na (signature b) in
    let candidates =
      Array.init na (fun i ->
          let s = sig_a.(i) in
          let acc = ref [] in
          for j = na - 1 downto 0 do
            if sig_b.(j) = s then acc := j :: !acc
          done;
          Array.of_list !acc)
    in
    if Array.exists (fun c -> Array.length c = 0) candidates then None
    else begin
      let order = Topology.topo_order a in
      let mapping = Array.make na (-1) in
      let used = Array.make na false in
      let steps = ref 0 in
      (* Feeds of [i] coming from balancers, as (producer, port) pairs. *)
      let bal_feeds net i =
        Array.to_list (Topology.feeds net i)
        |> List.filter_map (function
             | Topology.Bal_output { bal; port } -> Some (bal, port)
             | Topology.Net_input _ -> None)
      in
      let consistent i j =
        (* In [a]'s topological order every balancer producer of [i] is
           already mapped; the multiset of mapped (producer, port) pairs
           must equal [j]'s balancer feeds. *)
        let fa = List.map (fun (bal, port) -> (mapping.(bal), port)) (bal_feeds a i) in
        let fb = bal_feeds b j in
        List.sort compare fa = List.sort compare fb
      in
      let rec assign k =
        incr steps;
        if !steps > budget then raise Budget_exhausted;
        if k >= na then true
        else begin
          let i = order.(k) in
          let rec try_candidates ci =
            if ci >= Array.length candidates.(i) then false
            else begin
              let j = candidates.(i).(ci) in
              if (not used.(j)) && consistent i j then begin
                mapping.(i) <- j;
                used.(j) <- true;
                if assign (k + 1) then true
                else begin
                  mapping.(i) <- -1;
                  used.(j) <- false;
                  try_candidates (ci + 1)
                end
              end
              else try_candidates (ci + 1)
            end
          in
          try_candidates 0
        end
      in
      match assign 0 with
      | exception Budget_exhausted -> None
      | false -> None
      | true -> (
          match check a b ~mapping with Ok _ -> Some (Array.copy mapping) | Error _ -> None)
    end
  end

let equivalent_under ?(trials = 64) ?(seed = 0) ?(max_tokens = 32) ~pi_in ~pi_out a b =
  let w = Topology.input_width a in
  let rng = Random.State.make [| seed |] in
  let ok = ref true in
  for _ = 1 to trials do
    if !ok then begin
      let x = Array.init w (fun _ -> Random.State.int rng (max_tokens + 1)) in
      let ya = Eval.quiescent a x in
      let yb = Eval.quiescent b (Permutation.permute pi_in x) in
      if yb <> Permutation.permute pi_out ya then ok := false
    end
  done;
  !ok
