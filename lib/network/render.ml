let pp_source ppf = function
  | Topology.Net_input i -> Format.fprintf ppf "in%d" i
  | Topology.Bal_output { bal; port } -> Format.fprintf ppf "b%d.%d" bal port

let pp_dest ppf = function
  | Topology.Bal_input { bal; port } -> Format.fprintf ppf "b%d.%d" bal port
  | Topology.Net_output i -> Format.fprintf ppf "out%d" i

let describe net =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "network %a@." Topology.pp net;
  Array.iteri
    (fun li layer ->
      Format.fprintf ppf "layer %d:@." (li + 1);
      Array.iter
        (fun b ->
          let descriptor = Topology.balancer net b in
          let ins = Topology.feeds net b in
          let outs =
            Array.init descriptor.Balancer.fan_out (fun port ->
                Topology.consumer net (Topology.Bal_output { bal = b; port }))
          in
          Format.fprintf ppf "  b%d %a  <- [%a]  -> [%a]@." b Balancer.pp descriptor
            (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_source)
            ins
            (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_dest)
            outs)
        layer)
    (Topology.layers net);
  (* Bare wires, if any. *)
  Array.iteri
    (fun i s ->
      match s with
      | Topology.Net_input j -> Format.fprintf ppf "wire: in%d -> out%d@." j i
      | Topology.Bal_output _ -> ())
    (Topology.outputs net);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* Channel of every wire in a straightened drawing: network input [i] is
   channel [i]; output port [k] of a (2,2)-balancer continues on the
   channel of its input port [k]. *)
let channels net =
  let n = Topology.size net in
  let chan = Array.make n [| 0; 0 |] in
  Array.iter
    (fun b ->
      let descriptor = Topology.balancer net b in
      if descriptor.Balancer.fan_in <> 2 || descriptor.Balancer.fan_out <> 2 then
        invalid_arg "Render.ascii: network contains a balancer that is not (2,2)";
      let of_source = function
        | Topology.Net_input i -> i
        | Topology.Bal_output { bal; port } -> chan.(bal).(port)
      in
      chan.(b) <- Array.map of_source (Topology.feeds net b))
    (Topology.topo_order net);
  chan

let ascii net =
  let chan = channels net in
  let w = Topology.input_width net in
  let layers = Topology.layers net in
  let d = Array.length layers in
  (* Each layer gets a column of width 3: " | " marks the connector, with
     'o' endpoints on the joined channels.  Channels are drawn as rows of
     '-' and separated by blank rows holding the vertical strokes. *)
  let col_w = 4 in
  let rows = (2 * w) - 1 and cols = (col_w * d) + 2 in
  let grid = Array.make_matrix rows cols ' ' in
  for c = 0 to w - 1 do
    for x = 0 to cols - 1 do
      grid.(2 * c).(x) <- '-'
    done
  done;
  Array.iteri
    (fun li layer ->
      let x = (col_w * li) + 2 in
      Array.iter
        (fun b ->
          let a = min chan.(b).(0) chan.(b).(1) and z = max chan.(b).(0) chan.(b).(1) in
          grid.(2 * a).(x) <- 'o';
          grid.(2 * z).(x) <- 'o';
          for y = (2 * a) + 1 to (2 * z) - 1 do
            grid.(y).(x) <- (if y mod 2 = 0 then '+' else '|')
          done)
        layer)
    layers;
  let buf = Buffer.create (rows * (cols + 1)) in
  Array.iter
    (fun row ->
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf

let svg net =
  let chan = channels net in
  let w = Topology.input_width net in
  let layers = Topology.layers net in
  let d = Array.length layers in
  let margin = 30 and row_h = 28 and col_w = 46 in
  let width = (2 * margin) + (col_w * (d + 1)) in
  let height = (2 * margin) + (row_h * (max 1 (w - 1))) in
  let y_of c = margin + (row_h * c) in
  let x_of l = margin + (col_w * (l + 1)) in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n"
    width height width height;
  out "  <style>line{stroke:#333;stroke-width:2} circle{fill:#333} text{font:12px monospace;fill:#555}</style>\n";
  for c = 0 to w - 1 do
    out "  <line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\"/>\n" (margin - 12) (y_of c)
      (width - margin + 12) (y_of c);
    out "  <text x=\"%d\" y=\"%d\">%d</text>\n" 2 (y_of c + 4) c
  done;
  Array.iteri
    (fun li layer ->
      let x = x_of li in
      Array.iter
        (fun b ->
          let a = min chan.(b).(0) chan.(b).(1) and z = max chan.(b).(0) chan.(b).(1) in
          out "  <line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\"/>\n" x (y_of a) x (y_of z);
          out "  <circle cx=\"%d\" cy=\"%d\" r=\"4\"/>\n" x (y_of a);
          out "  <circle cx=\"%d\" cy=\"%d\" r=\"4\"/>\n" x (y_of z))
        layer)
    layers;
  out "</svg>\n";
  Buffer.contents buf

let dot net =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph balancing_network {\n";
  out "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for i = 0 to Topology.input_width net - 1 do
    out "  in%d [shape=diamond, label=\"in %d\"];\n" i i
  done;
  Array.iteri
    (fun i _ -> out "  out%d [shape=diamond, label=\"out %d\"];\n" i i)
    (Topology.outputs net);
  for b = 0 to Topology.size net - 1 do
    let descriptor = Topology.balancer net b in
    out "  b%d [label=\"b%d %s\"];\n" b b (Format.asprintf "%a" Balancer.pp descriptor)
  done;
  let edge src dst label = out "  %s -> %s [label=\"%s\"];\n" src dst label in
  for b = 0 to Topology.size net - 1 do
    Array.iter
      (fun s ->
        match s with
        | Topology.Net_input i -> edge (Printf.sprintf "in%d" i) (Printf.sprintf "b%d" b) ""
        | Topology.Bal_output { bal; port } ->
            edge (Printf.sprintf "b%d" bal) (Printf.sprintf "b%d" b) (string_of_int port))
      (Topology.feeds net b)
  done;
  Array.iteri
    (fun i s ->
      match s with
      | Topology.Net_input j -> edge (Printf.sprintf "in%d" j) (Printf.sprintf "out%d" i) ""
      | Topology.Bal_output { bal; port } ->
          edge (Printf.sprintf "b%d" bal) (Printf.sprintf "out%d" i) (string_of_int port))
    (Topology.outputs net);
  out "}\n";
  Buffer.contents buf

let layer_profile net =
  Array.map
    (fun layer ->
      Array.map
        (fun b ->
          let descriptor = Topology.balancer net b in
          (descriptor.Balancer.fan_in, descriptor.Balancer.fan_out))
        layer)
    (Topology.layers net)
