type source = Net_input of int | Bal_output of { bal : int; port : int }
type dest = Bal_input of { bal : int; port : int } | Net_output of int

type t = {
  input_width : int;
  balancers : Balancer.t array;
  feeds : source array array;
  outputs : source array;
  consumers_net : dest array; (* consumer of each network input wire *)
  consumers_bal : dest array array; (* consumer of each balancer output port *)
  depths : int array; (* 1-based depth of each balancer *)
  topo : int array; (* balancer ids in topological order *)
}

let fail fmt = Format.kasprintf invalid_arg fmt

let check_source ~input_width ~balancers what s =
  match s with
  | Net_input i ->
      if i < 0 || i >= input_width then fail "Topology.create: %s refers to network input %d (width %d)" what i input_width
  | Bal_output { bal; port } ->
      if bal < 0 || bal >= Array.length balancers then
        fail "Topology.create: %s refers to unknown balancer %d" what bal;
      let q = (balancers.(bal) : Balancer.t).fan_out in
      if port < 0 || port >= q then
        fail "Topology.create: %s refers to output port %d of balancer %d (fan-out %d)" what port bal q

let create ~input_width ~balancers ~feeds ~outputs =
  if input_width <= 0 then fail "Topology.create: input width must be positive";
  let n = Array.length balancers in
  if Array.length feeds <> n then
    fail "Topology.create: %d balancers but %d feed rows" n (Array.length feeds);
  Array.iteri
    (fun b row ->
      let p = (balancers.(b) : Balancer.t).fan_in in
      if Array.length row <> p then
        fail "Topology.create: balancer %d has fan-in %d but %d feeds" b p (Array.length row))
    feeds;
  if Array.length outputs = 0 then fail "Topology.create: no output wires";
  (* Range-check every reference, then record the unique consumer of every
     wire: each network input and each balancer output port must be
     consumed exactly once. *)
  Array.iteri
    (fun b row ->
      Array.iteri (fun i s -> check_source ~input_width ~balancers (Printf.sprintf "feed %d of balancer %d" i b) s) row)
    feeds;
  Array.iteri
    (fun i s -> check_source ~input_width ~balancers (Printf.sprintf "network output %d" i) s)
    outputs;
  let consumers_net = Array.make input_width None in
  let consumers_bal =
    Array.init n (fun b -> Array.make (balancers.(b) : Balancer.t).fan_out None)
  in
  let consume s d =
    match s with
    | Net_input i -> (
        match consumers_net.(i) with
        | None -> consumers_net.(i) <- Some d
        | Some _ -> fail "Topology.create: network input %d consumed twice" i)
    | Bal_output { bal; port } -> (
        match consumers_bal.(bal).(port) with
        | None -> consumers_bal.(bal).(port) <- Some d
        | Some _ -> fail "Topology.create: output port %d of balancer %d consumed twice" port bal)
  in
  Array.iteri
    (fun b row -> Array.iteri (fun i s -> consume s (Bal_input { bal = b; port = i })) row)
    feeds;
  Array.iteri (fun i s -> consume s (Net_output i)) outputs;
  let force what = function
    | Some d -> d
    | None -> fail "Topology.create: %s is never consumed" what
  in
  let consumers_net =
    Array.mapi (fun i d -> force (Printf.sprintf "network input %d" i) d) consumers_net
  in
  let consumers_bal =
    Array.mapi
      (fun b row ->
        Array.mapi (fun p d -> force (Printf.sprintf "output port %d of balancer %d" p b) d) row)
      consumers_bal
  in
  (* Kahn's algorithm over the balancer dependency graph: detects cycles
     and yields a topological order in one pass. *)
  let indeg = Array.make n 0 in
  Array.iteri
    (fun b row ->
      Array.iter (function Bal_output _ -> indeg.(b) <- indeg.(b) + 1 | Net_input _ -> ()) row)
    feeds;
  let queue = Queue.create () in
  Array.iteri (fun b d -> if d = 0 then Queue.add b queue) indeg;
  let topo = Array.make n 0 in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    topo.(!filled) <- b;
    incr filled;
    Array.iter
      (function
        | Bal_input { bal; port = _ } ->
            indeg.(bal) <- indeg.(bal) - 1;
            if indeg.(bal) = 0 then Queue.add bal queue
        | Net_output _ -> ())
      consumers_bal.(b)
  done;
  if !filled <> n then fail "Topology.create: the balancer graph contains a cycle";
  let depths = Array.make n 0 in
  Array.iter
    (fun b ->
      let d =
        Array.fold_left
          (fun acc s -> match s with Bal_output { bal; _ } -> max acc depths.(bal) | Net_input _ -> acc)
          0 feeds.(b)
      in
      depths.(b) <- d + 1)
    topo;
  {
    input_width;
    balancers = Array.copy balancers;
    feeds = Array.map Array.copy feeds;
    outputs = Array.copy outputs;
    consumers_net;
    consumers_bal;
    depths;
    topo;
  }

let input_width net = net.input_width
let output_width net = Array.length net.outputs
let size net = Array.length net.balancers

let balancer net b =
  if b < 0 || b >= Array.length net.balancers then invalid_arg "Topology.balancer: out of range";
  net.balancers.(b)

let feeds net b =
  if b < 0 || b >= Array.length net.feeds then invalid_arg "Topology.feeds: out of range";
  Array.copy net.feeds.(b)

let outputs net = Array.copy net.outputs

let consumer net = function
  | Net_input i ->
      if i < 0 || i >= net.input_width then invalid_arg "Topology.consumer: input wire out of range";
      net.consumers_net.(i)
  | Bal_output { bal; port } ->
      if bal < 0 || bal >= Array.length net.balancers then
        invalid_arg "Topology.consumer: balancer out of range";
      if port < 0 || port >= net.balancers.(bal).Balancer.fan_out then
        invalid_arg "Topology.consumer: port out of range";
      net.consumers_bal.(bal).(port)

let balancer_depth net b =
  if b < 0 || b >= Array.length net.depths then invalid_arg "Topology.balancer_depth: out of range";
  net.depths.(b)

let depth net = Array.fold_left max 0 net.depths

let layers net =
  let d = depth net in
  let buckets = Array.make d [] in
  (* Collect in reverse id order so each bucket ends up sorted by id. *)
  for b = Array.length net.balancers - 1 downto 0 do
    let i = net.depths.(b) - 1 in
    buckets.(i) <- b :: buckets.(i)
  done;
  Array.map Array.of_list buckets

let is_regular net = Array.for_all Balancer.is_regular net.balancers

let topo_order net = Array.copy net.topo

let shift_source ~bal_offset ~map_input s =
  match s with
  | Net_input i -> map_input i
  | Bal_output { bal; port } -> Bal_output { bal = bal + bal_offset; port }

let cascade a b =
  if output_width a <> input_width b then
    fail "Topology.cascade: output width %d <> input width %d" (output_width a) (input_width b);
  let na = size a in
  let map_b = shift_source ~bal_offset:na ~map_input:(fun i -> a.outputs.(i)) in
  let balancers = Array.append a.balancers b.balancers in
  let feeds =
    Array.append a.feeds (Array.map (fun row -> Array.map map_b row) b.feeds)
  in
  let outputs = Array.map map_b b.outputs in
  create ~input_width:a.input_width ~balancers ~feeds ~outputs

let parallel a b =
  let na = size a and wa = input_width a in
  let map_b = shift_source ~bal_offset:na ~map_input:(fun i -> Net_input (i + wa)) in
  let balancers = Array.append a.balancers b.balancers in
  let feeds =
    Array.append a.feeds (Array.map (fun row -> Array.map map_b row) b.feeds)
  in
  let outputs = Array.append a.outputs (Array.map map_b b.outputs) in
  create ~input_width:(wa + input_width b) ~balancers ~feeds ~outputs

let identity w =
  if w <= 0 then invalid_arg "Topology.identity: non-positive width";
  create ~input_width:w ~balancers:[||] ~feeds:[||]
    ~outputs:(Array.init w (fun i -> Net_input i))

let map_net_inputs f net =
  let map = function Net_input i -> Net_input (f i) | Bal_output _ as s -> s in
  create ~input_width:net.input_width ~balancers:net.balancers
    ~feeds:(Array.map (fun row -> Array.map map row) net.feeds)
    ~outputs:(Array.map map net.outputs)

let permute_inputs pi net =
  if Permutation.size pi <> net.input_width then
    invalid_arg "Topology.permute_inputs: size mismatch";
  map_net_inputs (Permutation.apply_index pi) net

let permute_outputs pi net =
  if Permutation.size pi <> output_width net then
    invalid_arg "Topology.permute_outputs: size mismatch";
  create ~input_width:net.input_width ~balancers:net.balancers ~feeds:net.feeds
    ~outputs:(Permutation.permute pi net.outputs)

let with_init_states f net =
  let balancers =
    Array.mapi
      (fun b (d : Balancer.t) ->
        Balancer.make ~init_state:(f b d) ~fan_in:d.Balancer.fan_in ~fan_out:d.Balancer.fan_out ())
      net.balancers
  in
  create ~input_width:net.input_width ~balancers ~feeds:net.feeds ~outputs:net.outputs

let randomize_states ~seed net =
  let rng = Random.State.make [| seed |] in
  with_init_states (fun _ d -> Random.State.int rng d.Balancer.fan_out) net

let equal a b =
  a.input_width = b.input_width && a.balancers = b.balancers && a.feeds = b.feeds
  && a.outputs = b.outputs

let pp ppf net =
  Format.fprintf ppf "%d -> %d, size %d, depth %d" (input_width net) (output_width net) (size net)
    (depth net)
